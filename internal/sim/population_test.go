package sim

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/strategy"
)

func testConfig(mem, ssets, gens int) Config {
	cfg := DefaultConfig(mem, ssets)
	cfg.Generations = gens
	cfg.Rules.Rounds = 20 // keep unit tests fast; dynamics unaffected
	return cfg
}

func TestNewPopulationDeterministic(t *testing.T) {
	cfg := testConfig(1, 16, 0)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewPopulation(cfg, rng.New(7))
	b := NewPopulation(cfg, rng.New(7))
	for i := 0; i < a.Size(); i++ {
		if !a.Strategy(i).Equal(b.Strategy(i)) {
			t.Fatalf("SSet %d differs between identically seeded populations", i)
		}
	}
	c := NewPopulation(cfg, rng.New(8))
	same := 0
	for i := 0; i < a.Size(); i++ {
		if a.Strategy(i).Equal(c.Strategy(i)) {
			same++
		}
	}
	if same == a.Size() {
		t.Fatal("different seeds gave identical population")
	}
}

func TestPopulationKinds(t *testing.T) {
	cfg := testConfig(1, 8, 0)
	cfg.Kind = MixedStrategies
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(1))
	if _, ok := p.Strategy(0).(*strategy.Mixed); !ok {
		t.Fatal("mixed config produced non-mixed strategy")
	}
	cfg.Kind = PureStrategies
	p = NewPopulation(cfg, rng.New(1))
	if _, ok := p.Strategy(0).(*strategy.Pure); !ok {
		t.Fatal("pure config produced non-pure strategy")
	}
}

func TestAdoptClones(t *testing.T) {
	cfg := testConfig(1, 4, 0)
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(2))
	p.Adopt(0, 1)
	if !p.Strategy(0).Equal(p.Strategy(1)) {
		t.Fatal("adopt did not copy strategy")
	}
	// Mutating the teacher must not change the learner: they are clones.
	p.SetStrategy(1, strategy.AllD(p.Space()))
	if p.Strategy(0).Equal(p.Strategy(1)) {
		t.Fatal("learner aliases teacher after SetStrategy")
	}
}

func TestFitnessFromPayoffs(t *testing.T) {
	cfg := testConfig(1, 3, 0)
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(3))
	p.setPayoff(0, 1, 2.0)
	p.setPayoff(0, 2, 4.0)
	if got := p.Fitness(0); got != 3.0 {
		t.Fatalf("fitness = %v, want 3", got)
	}
	fs := p.Fitnesses()
	if len(fs) != 3 || fs[0] != 3.0 {
		t.Fatalf("Fitnesses = %v", fs)
	}
}

func TestFitnessScaleIsPerRound(t *testing.T) {
	// The Fermi-exponent contract: fitness is a mean PER-ROUND payoff
	// averaged over S-1 opponents — the payoff table already divides by the
	// match length, so fitness must not change with Rules.Rounds. AllD in a
	// field of AllC earns exactly the temptation payoff every round.
	for _, rounds := range []int{10, 200} {
		cfg := testConfig(1, 4, 0)
		cfg.Rules.Rounds = rounds
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		master := rng.New(13)
		pop := NewPopulation(cfg, master)
		pop.SetStrategy(0, strategy.AllD(pop.Space()))
		for i := 1; i < pop.Size(); i++ {
			pop.SetStrategy(i, strategy.AllC(pop.Space()))
		}
		if _, err := refreshPayoffs(&cfg, pop, master, nil, 0, 0, pop.Size()); err != nil {
			t.Fatal(err)
		}
		if got := pop.Fitness(0); got != cfg.Rules.Payoff.T {
			t.Fatalf("rounds=%d: AllD fitness = %v, want temptation %v (per-round scale)",
				rounds, got, cfg.Rules.Payoff.T)
		}
	}
}

func TestFractionMatchingAndNear(t *testing.T) {
	cfg := testConfig(1, 4, 0)
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(4))
	w := strategy.WSLS(p.Space())
	p.SetStrategy(0, w.Clone())
	p.SetStrategy(1, w.Clone())
	p.SetStrategy(2, strategy.AllD(p.Space()))
	p.SetStrategy(3, strategy.AllC(p.Space()))
	if got := p.FractionMatching(w); got != 0.5 {
		t.Fatalf("FractionMatching = %v", got)
	}
	if got := p.FractionNear(w); got != 0.5 {
		t.Fatalf("FractionNear = %v", got)
	}
	// A mixed strategy close to WSLS counts for FractionNear only.
	m := strategy.MixedFromProbs(p.Space(), []float64{0.95, 0.1, 0.2, 0.9})
	p.SetStrategy(3, m)
	if got := p.FractionNear(w); got != 0.75 {
		t.Fatalf("FractionNear with mixed = %v, want 0.75", got)
	}
	if got := p.FractionMatching(w); got != 0.5 {
		t.Fatalf("FractionMatching changed: %v", got)
	}
}

func TestMeanCooperationProb(t *testing.T) {
	cfg := testConfig(1, 2, 0)
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(5))
	p.SetStrategy(0, strategy.AllC(p.Space()))
	p.SetStrategy(1, strategy.AllD(p.Space()))
	if got := p.MeanCooperationProb(); got != 0.5 {
		t.Fatalf("mean coop = %v, want 0.5", got)
	}
}

func TestSnapshotDeep(t *testing.T) {
	cfg := testConfig(1, 2, 0)
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(6))
	snap := p.Snapshot()
	p.SetStrategy(0, strategy.AllD(p.Space()))
	if snap[0].Equal(p.Strategy(0)) && snap[0].Equal(strategy.AllD(p.Space())) {
		t.Fatal("snapshot aliases population")
	}
}

func TestAbundanceFromPopulation(t *testing.T) {
	cfg := testConfig(1, 5, 0)
	_ = cfg.Validate()
	p := NewPopulation(cfg, rng.New(7))
	w := strategy.WSLS(p.Space())
	for i := 0; i < 4; i++ {
		p.SetStrategy(i, w.Clone())
	}
	p.SetStrategy(4, strategy.AllD(p.Space()))
	a := p.Abundance()
	if a.Distinct() != 2 || a.Total() != 5 {
		t.Fatalf("distinct %d total %d", a.Distinct(), a.Total())
	}
	if a.Fraction(w.Fingerprint()) != 0.8 {
		t.Fatalf("WSLS fraction = %v", a.Fraction(w.Fingerprint()))
	}
}

func TestFermi(t *testing.T) {
	// Equal payoffs: coin flip.
	if got := Fermi(1, 2, 2); got != 0.5 {
		t.Fatalf("Fermi(equal) = %v", got)
	}
	// Teacher much better, strong selection: ~1.
	if got := Fermi(10, 3, 1); got < 0.999 {
		t.Fatalf("Fermi(strong, better) = %v", got)
	}
	// Teacher much worse, strong selection: ~0.
	if got := Fermi(10, 1, 3); got > 0.001 {
		t.Fatalf("Fermi(strong, worse) = %v", got)
	}
	// Beta 0: random drift, always 1/2.
	if got := Fermi(0, 0, 100); got != 0.5 {
		t.Fatalf("Fermi(beta 0) = %v", got)
	}
	// Monotone in the payoff difference.
	prev := 0.0
	for d := -5.0; d <= 5; d += 0.5 {
		p := Fermi(1, d, 0)
		if p <= prev && d > -5 {
			t.Fatalf("Fermi not increasing at d=%v", d)
		}
		prev = p
	}
	// Symmetry: p(d) + p(-d) = 1.
	for _, d := range []float64{0.1, 1, 3} {
		if math.Abs(Fermi(1, d, 0)+Fermi(1, -d, 0)-1) > 1e-12 {
			t.Fatalf("Fermi asymmetric at d=%v", d)
		}
	}
}

func TestBlockRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{10, 3}, {16, 4}, {7, 7}, {5, 2}, {1024, 63}, {90, 17}} {
		covered := 0
		prevHi := 0
		for w := 0; w < tc.w; w++ {
			lo, hi := blockRange(tc.n, tc.w, w)
			if lo != prevHi {
				t.Fatalf("n=%d w=%d: gap at worker %d (lo %d, prev hi %d)", tc.n, tc.w, w, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("negative range")
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n || prevHi != tc.n {
			t.Fatalf("n=%d w=%d: covered %d", tc.n, tc.w, covered)
		}
	}
}

func TestPairToIJ(t *testing.T) {
	// Every pair index maps to a valid (i, j != i) and the mapping is a
	// bijection over the flat game list.
	for _, s := range []int{2, 3, 5, 10} {
		seen := map[[2]int]bool{}
		for k := 0; k < s*(s-1); k++ {
			i, j := pairToIJ(s, k)
			if i < 0 || i >= s || j < 0 || j >= s || i == j {
				t.Fatalf("s=%d pair %d -> invalid (%d,%d)", s, k, i, j)
			}
			key := [2]int{i, j}
			if seen[key] {
				t.Fatalf("s=%d pair (%d,%d) produced twice", s, i, j)
			}
			seen[key] = true
		}
		if len(seen) != s*(s-1) {
			t.Fatalf("s=%d covered %d ordered pairs", s, len(seen))
		}
	}
	// Explicit spot checks: row-major, diagonal skipped.
	if i, j := pairToIJ(4, 0); i != 0 || j != 1 {
		t.Fatalf("pair 0 = (%d,%d)", i, j)
	}
	if i, j := pairToIJ(4, 3); i != 1 || j != 0 {
		t.Fatalf("pair 3 = (%d,%d)", i, j)
	}
	if i, j := pairToIJ(4, 11); i != 3 || j != 2 {
		t.Fatalf("pair 11 = (%d,%d)", i, j)
	}
}

func TestRowSegmentsCoverEachRow(t *testing.T) {
	for _, tc := range []struct{ s, w int }{{4, 2}, {6, 5}, {4, 10}, {3, 6}, {8, 3}} {
		for i := 0; i < tc.s; i++ {
			segs := rowSegments(tc.s, tc.w, i)
			if len(segs) == 0 {
				t.Fatalf("s=%d w=%d: row %d has no owners", tc.s, tc.w, i)
			}
			expect := i * (tc.s - 1)
			for _, seg := range segs {
				if seg.lo != expect {
					t.Fatalf("s=%d w=%d row %d: segment gap at %d (lo %d)", tc.s, tc.w, i, expect, seg.lo)
				}
				wlo, whi := blockRange(tc.s*(tc.s-1), tc.w, seg.worker)
				if seg.lo < wlo || seg.hi > whi {
					t.Fatalf("segment outside its worker's block")
				}
				expect = seg.hi
			}
			if expect != (i+1)*(tc.s-1) {
				t.Fatalf("s=%d w=%d row %d: segments end at %d", tc.s, tc.w, i, expect)
			}
		}
	}
}

func TestRefreshPayoffsIncremental(t *testing.T) {
	cfg := testConfig(1, 6, 0)
	_ = cfg.Validate()
	master := rng.New(9)
	pop := NewPopulation(cfg, master)
	// First refresh: everything dirty -> S*(S-1) games.
	games, err := refreshPayoffs(&cfg, pop, master, nil, 0, 0, pop.Size())
	if err != nil {
		t.Fatal(err)
	}
	if games != 30 {
		t.Fatalf("initial refresh played %d games, want 30", games)
	}
	pop.clearDirty()
	// Nothing changed: zero games.
	if g, err := refreshPayoffs(&cfg, pop, master, nil, 1, 0, pop.Size()); err != nil || g != 0 {
		t.Fatalf("clean refresh played %d games (err %v)", g, err)
	}
	// One SSet changes: its row (5 games) plus its column (5 games).
	pop.SetStrategy(2, strategy.AllD(pop.Space()))
	if g, err := refreshPayoffs(&cfg, pop, master, nil, 2, 0, pop.Size()); err != nil || g != 10 {
		t.Fatalf("single-change refresh played %d games, want 10 (err %v)", g, err)
	}
	pop.clearDirty()
	// Full recompute mode: always S*(S-1).
	cfg.FullRecompute = true
	if g, err := refreshPayoffs(&cfg, pop, master, nil, 3, 0, pop.Size()); err != nil || g != 30 {
		t.Fatalf("full recompute played %d games, want 30 (err %v)", g, err)
	}
}

func TestPayoffValuesMatchDirectPlay(t *testing.T) {
	cfg := testConfig(1, 4, 0)
	_ = cfg.Validate()
	master := rng.New(11)
	pop := NewPopulation(cfg, master)
	pop.SetStrategy(0, strategy.AllC(pop.Space()))
	pop.SetStrategy(1, strategy.AllD(pop.Space()))
	if _, err := refreshPayoffs(&cfg, pop, master, nil, 0, 0, pop.Size()); err != nil {
		t.Fatal(err)
	}
	// ALLC vs ALLD: sucker payoff 0 per round; ALLD vs ALLC: temptation 4.
	if got := pop.Payoff(0, 1); got != 0 {
		t.Fatalf("payoff(ALLC,ALLD) = %v", got)
	}
	if got := pop.Payoff(1, 0); got != 4 {
		t.Fatalf("payoff(ALLD,ALLC) = %v", got)
	}
}
