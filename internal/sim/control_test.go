package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/strategy"
)

// Control-hook semantics: a non-nil return stops the run at that generation
// boundary, persists a resume snapshot, and surfaces ErrStopped; resuming
// from the snapshot continues the trajectory bit-identically.

// stopAfter returns a Control hook that requests a stop at generation g,
// recording how many times it asked (a restart supervisor that wrongly
// re-runs a stopped job would drive the count past one).
func stopAfter(g int, stops *int) func(int) error {
	return func(gen int) error {
		if gen >= g {
			*stops++
			return errors.New("pause requested")
		}
		return nil
	}
}

func TestControlStopAndResumeSequential(t *testing.T) {
	const stopAt = 40
	base := testConfig(1, 8, 120)
	base.Seed = 81
	base.FullRecompute = true // counters then sum exactly across the cut

	full, err := RunSequential(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	sink := NewMemorySink()
	cfg.CheckpointSink = sink
	stops := 0
	cfg.Control = stopAfter(stopAt, &stops)
	if _, err := RunSequential(cfg); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped run error = %v, want ErrStopped", err)
	}
	if stops != 1 {
		t.Fatalf("control hook asked to stop %d times, want 1", stops)
	}
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Generation != stopAt {
		t.Fatalf("resume snapshot = %+v, want generation %d", snap, stopAt)
	}

	resume := base
	resume.InitialStrategies = snap.Strategies
	resume.StartGeneration = int(snap.Generation)
	resume.Generations = base.Generations - int(snap.Generation)
	resume.BaseCounters = runToCounters(snap.Counters)
	resumed, err := RunSequential(resume)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Final {
		if !full.Final[i].Equal(resumed.Final[i]) {
			t.Fatalf("final strategy %d differs after stop/resume", i)
		}
	}
	for i := range full.FinalFitness {
		if full.FinalFitness[i] != resumed.FinalFitness[i] {
			t.Fatalf("final fitness %d differs after stop/resume", i)
		}
	}
	if full.Counters != resumed.Counters {
		t.Fatalf("counters differ after stop/resume: %+v vs %+v", full.Counters, resumed.Counters)
	}
}

func TestControlStopAndResumeParallel(t *testing.T) {
	const stopAt = 20
	base := testConfig(1, 6, 60)
	base.Seed = 82
	base.FullRecompute = true

	full, err := RunSequential(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	sink := NewMemorySink()
	cfg.CheckpointSink = sink
	stops := 0
	cfg.Control = stopAfter(stopAt, &stops)
	if _, err := RunParallel(cfg, 4); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped parallel run error = %v, want ErrStopped", err)
	}
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Generation != stopAt {
		t.Fatalf("resume snapshot = %+v, want generation %d", snap, stopAt)
	}

	resume := base
	resume.InitialStrategies = snap.Strategies
	resume.StartGeneration = int(snap.Generation)
	resume.Generations = base.Generations - int(snap.Generation)
	resume.BaseCounters = runToCounters(snap.Counters)
	resumed, err := RunParallel(resume, 3) // rank count may even change across the cut
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Final {
		if !full.Final[i].Equal(resumed.Final[i]) {
			t.Fatalf("final strategy %d differs after parallel stop/resume", i)
		}
	}
	for i := range full.FinalFitness {
		if full.FinalFitness[i] != resumed.FinalFitness[i] {
			t.Fatalf("final fitness %d differs after parallel stop/resume", i)
		}
	}
}

func TestControlStopWithoutSinkStillStops(t *testing.T) {
	cfg := testConfig(1, 4, 30)
	stops := 0
	cfg.Control = stopAfter(10, &stops)
	if _, err := RunSequential(cfg); !errors.Is(err, ErrStopped) {
		t.Fatalf("error = %v, want ErrStopped", err)
	}
}

func TestResilientDoesNotRestartOnControlStop(t *testing.T) {
	cfg := testConfig(1, 6, 50)
	cfg.Seed = 83
	cfg.CheckpointEvery = 5
	cfg.CheckpointSink = NewMemorySink()
	stops := 0
	cfg.Control = stopAfter(15, &stops)
	_, err := RunParallelResilient(cfg, 3, RestartPolicy{})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("supervised stop error = %v, want ErrStopped", err)
	}
	if stops != 1 {
		t.Fatalf("supervisor re-ran a stopped job: control asked to stop %d times", stops)
	}
}

func TestExactModeErrorPropagatesInsteadOfPanicking(t *testing.T) {
	// Regression: playPair used to panic when MarkovPayoffN failed mid-run.
	// Validate screens configurations up front, so force a runtime failure
	// the way a buggy caller could: an observer injecting a strategy from the
	// wrong memory space, which poisons the next generation's exact analysis.
	cfg := testConfig(2, 4, 3)
	cfg.ExactPayoffs = true
	wrong := strategy.AllC(strategy.NewSpace(1))
	cfg.Observer = ObserverFunc(func(gen int, pop *Population, ev Events) {
		if gen == 0 {
			pop.SetStrategy(0, wrong)
		}
	})
	_, err := RunSequential(cfg)
	if err == nil {
		t.Fatal("exact-mode analysis failure did not surface as an error")
	}
	if !strings.Contains(err.Error(), "exact payoff for pair") {
		t.Fatalf("error = %v, want a playPair exact-payoff error", err)
	}
}

func TestValidateRejectsNonFiniteParameters(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"pc rate", func(c *Config) { c.PCRate = nan }},
		{"mutation rate", func(c *Config) { c.Mu = nan }},
		{"beta", func(c *Config) { c.Beta = nan }},
		{"error rate", func(c *Config) { c.Rules.ErrorRate = nan }},
	}
	for _, tc := range cases {
		cfg := testConfig(1, 4, 10)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: NaN accepted by Validate", tc.name)
		}
	}
}

func TestValidateProbesExactModeComputability(t *testing.T) {
	// A well-formed exact-mode configuration must pass the up-front probe
	// at every supported memory depth.
	for mem := 1; mem <= 3; mem++ {
		cfg := testConfig(mem, 4, 10)
		cfg.ExactPayoffs = true
		if err := cfg.Validate(); err != nil {
			t.Fatalf("memory %d: exact-mode config rejected: %v", mem, err)
		}
	}
}
