package sim

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/stats"
)

// CheckpointSink receives the Nature Agent's periodic snapshots and serves
// the latest one back to the recovery supervisor.
type CheckpointSink interface {
	// Save persists a snapshot; a later Save supersedes earlier ones.
	Save(s *checkpoint.Snapshot) error
	// Latest returns the most recent snapshot, or (nil, nil) when nothing
	// has been saved yet.
	Latest() (*checkpoint.Snapshot, error)
}

// MemorySink keeps the latest snapshot in memory, encoded through the
// checkpoint codec so Save/Latest exercise exactly the bytes a file would
// hold and the caller can never alias live population state. It is the
// supervisor's default sink and safe for concurrent use.
type MemorySink struct {
	mu    sync.Mutex
	data  []byte
	saves int
}

// NewMemorySink creates an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Save implements CheckpointSink.
func (m *MemorySink) Save(s *checkpoint.Snapshot) error {
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, s); err != nil {
		return err
	}
	m.mu.Lock()
	m.data = buf.Bytes()
	m.saves++
	m.mu.Unlock()
	return nil
}

// Latest implements CheckpointSink.
func (m *MemorySink) Latest() (*checkpoint.Snapshot, error) {
	m.mu.Lock()
	data := m.data
	m.mu.Unlock()
	if data == nil {
		return nil, nil
	}
	return checkpoint.Read(bytes.NewReader(data))
}

// Saves returns how many snapshots have been saved.
func (m *MemorySink) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// FileSink persists the latest snapshot to a single file, atomically and
// durably: write to a temporary file in the same directory, fsync it, rename
// over the target, then fsync the directory. A crash at any point leaves
// either the previous good checkpoint or the new one — never a torn or
// zero-length file (a rename alone is atomic in the namespace but not
// durable: after a power loss the directory entry can point at a file whose
// data never reached disk).
type FileSink struct {
	Path string

	// writeFn overrides the snapshot encoder (tests inject failures mid-write
	// to prove a torn write never replaces the previous checkpoint); nil
	// means checkpoint.Write.
	writeFn func(w io.Writer, s *checkpoint.Snapshot) error
}

// Save implements CheckpointSink.
func (f *FileSink) Save(s *checkpoint.Snapshot) error {
	write := f.writeFn
	if write == nil {
		write = checkpoint.Write
	}
	dir := filepath.Dir(f.Path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.Path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sim: checkpoint temp file: %w", err)
	}
	if err := write(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: checkpoint fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), f.Path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: checkpoint rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sim: checkpoint dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("sim: checkpoint dir fsync: %w", err)
	}
	return nil
}

// Latest implements CheckpointSink.
func (f *FileSink) Latest() (*checkpoint.Snapshot, error) {
	file, err := os.Open(f.Path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return checkpoint.Read(file)
}

// saveSnapshot captures the population after gen completed generations,
// with the run's cumulative counters — and, under cfg.CheckpointSeries,
// the series sampled so far — into the configured sink.
func saveSnapshot(cfg *Config, pop *Population, gen int, ctr Counters, fit, coop *stats.Series) error {
	snap := &checkpoint.Snapshot{
		Generation: uint64(gen),
		Seed:       cfg.Seed,
		Memory:     cfg.Memory,
		Strategies: pop.Snapshot(),
		Counters:   countersToRun(ctr),
	}
	if cfg.CheckpointSeries {
		snap.MeanFitness = seriesToPoints(fit)
		snap.Cooperation = seriesToPoints(coop)
	}
	if err := cfg.CheckpointSink.Save(snap); err != nil {
		return fmt.Errorf("sim: checkpoint at generation %d: %w", gen, err)
	}
	return nil
}

// seriesToPoints flattens a sampled series into checkpoint points. The
// result is non-nil even when empty: "recorded, nothing sampled yet" is
// distinct from "not recorded" in the snapshot encoding.
func seriesToPoints(s *stats.Series) []checkpoint.SeriesPoint {
	if s == nil {
		return []checkpoint.SeriesPoint{}
	}
	out := make([]checkpoint.SeriesPoint, s.Len())
	for i := range out {
		g, v := s.At(i)
		out[i] = checkpoint.SeriesPoint{Generation: uint64(g), Value: v}
	}
	return out
}

// countersToRun converts sim counters to their checkpoint form.
func countersToRun(c Counters) *checkpoint.RunCounters {
	return &checkpoint.RunCounters{
		GamesPlayed: c.GamesPlayed,
		PCEvents:    c.PCEvents,
		Adoptions:   c.Adoptions,
		Mutations:   c.Mutations,
	}
}

// runToCounters converts checkpoint counters back; a nil input (a version-1
// snapshot) yields zero counters.
func runToCounters(rc *checkpoint.RunCounters) Counters {
	if rc == nil {
		return Counters{}
	}
	return Counters{
		GamesPlayed: rc.GamesPlayed,
		PCEvents:    rc.PCEvents,
		Adoptions:   rc.Adoptions,
		Mutations:   rc.Mutations,
	}
}
