package sim

import (
	"repro/internal/rng"
	"repro/internal/strategy"
)

// Derivation keys for the independent random streams of a run. Both engines
// derive the same streams from the master seed, which is what makes the
// sequential and parallel trajectories bit-identical.
const (
	keyNature = 0x4E41 // Nature Agent decisions
	keyMutant = 0x4D55 // mutant strategy generation
)

// decision is the Nature Agent's plan for one generation, computed before
// fitness is consulted: whether a PC event fires and which SSets it
// compares, and whether a mutation fires and which SSet it hits. The
// adoption itself depends on fitness and is resolved in applyPC.
type decision struct {
	pc               bool
	teacher, learner int
	mutate           bool
	mutant           int
}

// natureDecision draws generation gen's plan from the master seed. The
// stream is derived per generation, so the plan is independent of engine
// and rank layout.
func natureDecision(cfg *Config, master *rng.Source, gen int) decision {
	src := master.Derive(keyNature, uint64(gen))
	var d decision
	if src.Bernoulli(cfg.PCRate) {
		d.pc = true
		d.teacher, d.learner = src.Pair(cfg.NumSSets)
	}
	if src.Bernoulli(cfg.Mu) {
		d.mutate = true
		d.mutant = src.Intn(cfg.NumSSets)
	}
	return d
}

// resolveAdoption decides whether the learner adopts the teacher's strategy
// given their fitness values, per the paper's §IV-B: the Fermi probability
// (Equation 1), gated — unless AllowWorseAdoption — on the teacher strictly
// outperforming the learner. The random draw comes from the same
// per-generation Nature stream, offset so it cannot collide with
// natureDecision's draws.
func resolveAdoption(cfg *Config, master *rng.Source, gen int, piT, piL float64) bool {
	if !cfg.AllowWorseAdoption && piT <= piL {
		return false
	}
	src := master.Derive(keyNature, uint64(gen), 1)
	return src.Bernoulli(Fermi(cfg.Beta, piT, piL))
}

// mutantStrategy generates the replacement strategy for generation gen's
// mutation event (the paper's gen_new_strat). Deriving by generation keeps
// the mutant identical across engines.
func mutantStrategy(cfg *Config, master *rng.Source, sp strategy.Space, gen int) strategy.Strategy {
	src := master.Derive(keyMutant, uint64(gen))
	return randomStrategy(cfg.Kind, sp, src)
}
