package sim

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/strategy"
)

// TestFixationMatchesAnalyticPrediction cross-validates the agent engine
// against the closed-form fixation probability of the Fermi pairwise
// comparison process: a lone ALLD mutant among ALLC residents must fixate
// at the analytically predicted rate over many independent trials.
func TestFixationMatchesAnalyticPrediction(t *testing.T) {
	const (
		n      = 6
		beta   = 0.5
		trials = 300
	)
	sp := strategy.NewSpace(1)
	alld, allc := strategy.AllD(sp), strategy.AllC(sp)

	want, err := analysis.FixationProbability(
		analysis.FixationConfig{N: n, Beta: beta}, alld, allc)
	if err != nil {
		t.Fatal(err)
	}

	fixed, resolved := 0, 0
	for trial := 0; trial < trials; trial++ {
		cfg := DefaultConfig(1, n)
		cfg.Generations = 3000
		cfg.PCRate = 1.0
		cfg.Mu = 0
		cfg.Beta = beta
		cfg.AllowWorseAdoption = true
		cfg.ExactPayoffs = true
		cfg.Seed = uint64(1000 + trial)
		cfg.SampleStride = cfg.Generations // minimise observation overhead
		seeds := make([]strategy.Strategy, n)
		seeds[0] = alld
		for i := 1; i < n; i++ {
			seeds[i] = allc
		}
		cfg.InitialStrategies = seeds
		res, err := RunSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := res.FinalAbundance()
		if a.Distinct() != 1 {
			continue // unresolved within the horizon (rare); skip
		}
		resolved++
		if res.Final[0].Equal(alld) {
			fixed++
		}
	}
	if resolved < trials*9/10 {
		t.Fatalf("only %d/%d trials resolved", resolved, trials)
	}
	got := float64(fixed) / float64(resolved)
	// Binomial noise at ~300 trials: 3 sigma ~ 0.086.
	if math.Abs(got-want) > 0.09 {
		t.Fatalf("measured fixation %v over %d trials, analytic %v", got, resolved, want)
	}
}

// TestFixationNeutralDrift cross-validates the neutral case: two
// payoff-identical strategies (TFT and ALLC without errors) fixate at the
// 1/N benchmark.
func TestFixationNeutralDrift(t *testing.T) {
	const (
		n      = 4
		trials = 300
	)
	sp := strategy.NewSpace(1)
	tft, allc := strategy.TFT(sp), strategy.AllC(sp)
	fixed, resolved := 0, 0
	for trial := 0; trial < trials; trial++ {
		cfg := DefaultConfig(1, n)
		cfg.Generations = 4000
		cfg.PCRate = 1.0
		cfg.Mu = 0
		cfg.Beta = 1
		cfg.AllowWorseAdoption = true
		cfg.ExactPayoffs = true
		cfg.Seed = uint64(5000 + trial)
		cfg.SampleStride = cfg.Generations
		seeds := make([]strategy.Strategy, n)
		seeds[0] = tft
		for i := 1; i < n; i++ {
			seeds[i] = allc
		}
		cfg.InitialStrategies = seeds
		res, err := RunSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalAbundance().Distinct() != 1 {
			continue
		}
		resolved++
		if res.Final[0].Equal(tft) {
			fixed++
		}
	}
	if resolved < trials*9/10 {
		t.Fatalf("only %d/%d trials resolved", resolved, trials)
	}
	got := float64(fixed) / float64(resolved)
	want := 1.0 / n
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("neutral fixation %v over %d trials, want %v", got, resolved, want)
	}
}
