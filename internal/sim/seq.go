package sim

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunSequential executes the full simulation on one thread. It is the
// reference implementation: RunParallel must reproduce its trajectory
// exactly for any rank count.
func RunSequential(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now() //egdlint:allow determinism elapsed-time metadata for Result.Elapsed, not part of the trajectory
	master := rng.New(cfg.Seed)
	pop := NewPopulation(cfg, master)
	kern := newPayoffKernel(&cfg)
	res := &Result{Ranks: 1, Counters: cfg.BaseCounters}
	res.MeanFitness, _ = stats.NewSeries(cfg.SampleStride)
	res.Cooperation, _ = stats.NewSeries(cfg.SampleStride)
	var pt *phaseTimer
	if cfg.Metrics {
		pt = newPhaseTimer()
	}

	for gen := cfg.StartGeneration; gen < cfg.StartGeneration+cfg.Generations; gen++ {
		// Control poll: a non-nil return stops the run at this generation
		// boundary (pause/cancel for a hosting service). The partial Result
		// rides along with ErrStopped so the caller keeps the series sampled
		// before the cut; a resumed segment's series appended to it is
		// bit-identical to an uninterrupted run's.
		if cfg.Control != nil {
			if cause := cfg.Control(gen); cause != nil {
				return res, stopRun(&cfg, pop, gen, res.Counters, res.MeanFitness, res.Cooperation, cause)
			}
		}
		// Game dynamics: bring every SSet's payoff row up to date.
		tg := pt.begin()
		played, err := refreshPayoffs(&cfg, pop, master, kern, gen, 0, pop.Size())
		res.Counters.GamesPlayed += played
		if err != nil {
			return nil, err
		}
		pt.end(PhaseGamePlay, tg)
		pop.clearDirty()

		// Population dynamics: the Nature Agent's step.
		tn := pt.begin()
		ev := natureStep(&cfg, pop, master, gen, &res.Counters)
		pt.end(PhaseNatureStep, tn)

		res.MeanFitness.Observe(gen, pop.MeanFitness())
		res.Cooperation.Observe(gen, pop.MeanCooperationProb())
		if cfg.Observer != nil {
			cfg.Observer.Generation(gen, pop, ev)
		}
		// Same absolute-generation checkpoint cadence as the parallel
		// engine, so sequential and parallel runs write identical snapshots.
		if cfg.CheckpointEvery > 0 && (gen+1)%cfg.CheckpointEvery == 0 {
			tc := pt.begin()
			if err := saveSnapshot(&cfg, pop, gen+1, res.Counters, res.MeanFitness, res.Cooperation); err != nil {
				return nil, err
			}
			pt.end(PhaseCheckpoint, tc)
			if cfg.EventLog != nil {
				cfg.EventLog.Append(trace.Event{Kind: trace.EventCheckpoint, Generation: gen + 1, Rank: 0})
			}
		}
	}

	res.Final = pop.Snapshot()
	res.FinalFitness = pop.Fitnesses()
	res.Elapsed = time.Since(start) //egdlint:allow determinism elapsed-time metadata, not part of the trajectory
	if cfg.Metrics {
		snap := pt.snapshot(0)
		snap.Cache = kern.cacheStats()
		res.Metrics = &RunMetrics{Phases: []RankPhaseSnapshot{snap}}
		if cfg.EventLog != nil {
			cfg.EventLog.Append(trace.Event{Kind: trace.EventMetrics,
				Generation: cfg.StartGeneration + cfg.Generations, Rank: 0,
				Detail: fmt.Sprintf("games=%d", res.Counters.GamesPlayed)})
		}
	}
	return res, nil
}

// natureStep performs one generation of population dynamics on a population
// with up-to-date payoffs: the PC learning event and the mutation event,
// per the paper's Nature Agent pseudo-code. Used verbatim by the sequential
// engine and by rank 0 of the parallel engine (operating on its global
// view), which is what keeps the two trajectories identical.
func natureStep(cfg *Config, pop *Population, master *rng.Source, gen int, ctr *Counters) Events {
	d := natureDecision(cfg, master, gen)
	ev := Events{
		PCOccurred:       d.pc,
		Teacher:          d.teacher,
		Learner:          d.learner,
		MutationOccurred: d.mutate,
		Mutant:           d.mutant,
	}
	if d.pc {
		ctr.PCEvents++
		piT := pop.Fitness(d.teacher)
		piL := pop.Fitness(d.learner)
		if resolveAdoption(cfg, master, gen, piT, piL) {
			pop.Adopt(d.learner, d.teacher)
			ev.Adopted = true
			ctr.Adoptions++
		}
	}
	if d.mutate {
		ctr.Mutations++
		pop.SetStrategy(d.mutant, mutantStrategy(cfg, master, pop.Space(), gen))
	}
	return ev
}
