package sim

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/game"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// This file is the engine-level half of the observability layer: per-rank
// phase timers that split a run's wall time into the paper's compute and
// communication categories (Tables V-VI), the RunMetrics aggregate the
// engines attach to Result, and the export into a metrics.Registry that
// cmd/egdsim serialises. Phase timing is wall-clock derived and therefore
// nondeterministic; everything it measures is *about* the trajectory, never
// an input to it, which is why the //egdlint:allow escapes below are sound.

// Phase names used by both engines. Workers spend their time in game play
// (compute) and in the broadcast/reduce/point-to-point phases (comm); the
// Nature Agent mirrors the comm phases and adds checkpointing.
const (
	// PhaseGamePlay is IPD match execution — the paper's "game dynamics"
	// compute phase.
	PhaseGamePlay = "game_play"
	// PhaseFitnessComm is point-to-point fitness traffic: selected-row
	// segments and final payoff blocks (the paper's torus traffic).
	PhaseFitnessComm = "fitness_comm"
	// PhaseBroadcast is the Nature Agent's selection and update broadcasts
	// (the paper's collective-network traffic).
	PhaseBroadcast = "broadcast"
	// PhaseReduce is the mean-fitness and game-count reductions.
	PhaseReduce = "reduce"
	// PhaseCheckpoint is snapshot persistence on the Nature Agent.
	PhaseCheckpoint = "checkpoint"
	// PhaseNatureStep is the sequential engine's population-dynamics step
	// (folded into broadcast/fitness_comm phases when parallel).
	PhaseNatureStep = "nature_step"
)

// PhaseStat is one phase's invocation count and cumulative wall time on
// one rank. Calls is deterministic for a deterministic run; Nanos is
// wall-clock derived and varies between otherwise identical runs.
type PhaseStat struct {
	Phase string `json:"phase"`
	Calls uint64 `json:"calls"`
	Nanos int64  `json:"nanos"`
}

// RankPhaseSnapshot is one rank's per-phase timing, phases sorted by name.
// Rank is the original (pre-eviction) rank. Cache carries the rank's
// payoff-cache counters when Config.PayoffCache is set (nil otherwise, so
// cache-off runs gather byte-identical snapshots to pre-cache builds).
type RankPhaseSnapshot struct {
	Rank   int              `json:"rank"`
	Phases []PhaseStat      `json:"phases,omitempty"`
	Cache  *game.CacheStats `json:"cache,omitempty"`
}

// WireBytes models the gather payload carrying a snapshot to the Nature
// rank: one rank word plus, per phase, the name bytes and two words, plus
// five words of cache counters when present.
func (s RankPhaseSnapshot) WireBytes() uint64 {
	n := uint64(8)
	for _, p := range s.Phases {
		n += uint64(len(p.Phase)) + 16
	}
	if s.Cache != nil {
		n += 5 * 8
	}
	return n
}

// phaseTimer accumulates one rank's phase timings. Each rank times only
// its own goroutine, so there is no locking; a nil timer (metrics
// disabled) makes begin/end no-ops.
type phaseTimer struct {
	stats map[string]*phaseAccum
}

type phaseAccum struct {
	calls uint64
	nanos int64
}

func newPhaseTimer() *phaseTimer {
	return &phaseTimer{stats: make(map[string]*phaseAccum)}
}

// begin returns the phase start time, zero when the timer is disabled.
func (t *phaseTimer) begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now() //egdlint:allow determinism phase timing is observability metadata, never an input to the trajectory
}

// end books the elapsed time since start against the phase.
func (t *phaseTimer) end(phase string, start time.Time) {
	if t == nil {
		return
	}
	a, ok := t.stats[phase]
	if !ok {
		a = &phaseAccum{}
		t.stats[phase] = a
	}
	a.calls++
	a.nanos += time.Since(start).Nanoseconds() //egdlint:allow determinism phase timing is observability metadata, never an input to the trajectory
}

// snapshot captures the timer as a plain value for the given original
// rank, phases in sorted order.
func (t *phaseTimer) snapshot(rank int) RankPhaseSnapshot {
	s := RankPhaseSnapshot{Rank: rank}
	names := make([]string, 0, len(t.stats))
	for name := range t.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := t.stats[name]
		s.Phases = append(s.Phases, PhaseStat{Phase: name, Calls: a.calls, Nanos: a.nanos})
	}
	return s
}

// RunMetrics is the observability aggregate a run attaches to its Result
// when Config.Metrics is set: every rank's phase timing plus, for the
// parallel engine, every rank's communication accounting.
type RunMetrics struct {
	// Phases holds per-rank phase timings, ordered by original rank. Ranks
	// evicted mid-run lose their phase data (it lived on the dead
	// goroutine); their comm accounting below survives.
	Phases []RankPhaseSnapshot `json:"phases,omitempty"`
	// Comm holds per-rank communication accounting (parallel engine only),
	// ordered by original rank.
	Comm []mpi.RankCommSnapshot `json:"comm,omitempty"`
	// Transport holds the wire-transport counters of a networked run
	// (RunWorker): this process's view of the wire — frames, bytes, beats,
	// and the retry machinery's evidence (reconnects, resends, duplicate
	// suppression). Nil on in-process runs.
	Transport *mpi.TransportSnapshot `json:"transport,omitempty"`
}

// PhaseTotals aggregates phase timings across ranks, sorted by phase name.
func (m *RunMetrics) PhaseTotals() []PhaseStat {
	acc := map[string]*PhaseStat{}
	for _, r := range m.Phases {
		for _, p := range r.Phases {
			t, ok := acc[p.Phase]
			if !ok {
				t = &PhaseStat{Phase: p.Phase}
				acc[p.Phase] = t
			}
			t.Calls += p.Calls
			t.Nanos += p.Nanos
		}
	}
	out := make([]PhaseStat, 0, len(acc))
	names := make([]string, 0, len(acc))
	for name := range acc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, *acc[name])
	}
	return out
}

// ComputeCommSplit classifies the aggregated phase time into the paper's
// Table V categories: compute (game play and the Nature step), comm
// (broadcasts, reductions, point-to-point fitness traffic), and other
// (checkpoint I/O).
func (m *RunMetrics) ComputeCommSplit() (compute, comm, other time.Duration) {
	for _, p := range m.PhaseTotals() {
		d := time.Duration(p.Nanos)
		switch p.Phase {
		case PhaseGamePlay, PhaseNatureStep:
			compute += d
		case PhaseBroadcast, PhaseReduce, PhaseFitnessComm:
			comm += d
		default:
			other += d
		}
	}
	return compute, comm, other
}

// MetricsRegistry exports the run's metrics into a registry keyed by the
// egd_* naming scheme documented in docs/OBSERVABILITY.md. Nil when the
// run did not collect metrics. Wall-clock derived series carry the _nanos
// (or _wallclock_total) suffix so Snapshot.Deterministic can strip them;
// everything else is bit-reproducible between same-seed runs.
func (r *Result) MetricsRegistry() *metrics.Registry {
	if r.Metrics == nil {
		return nil
	}
	reg := metrics.NewRegistry()
	reg.Counter("egd_games_played_total").Add(r.Counters.GamesPlayed)
	reg.Counter("egd_pc_events_total").Add(r.Counters.PCEvents)
	reg.Counter("egd_adoptions_total").Add(r.Counters.Adoptions)
	reg.Counter("egd_mutations_total").Add(r.Counters.Mutations)
	reg.Gauge("egd_ranks").Set(int64(r.Ranks))
	reg.Counter("egd_restarts_total").Add(uint64(r.Restarts))
	reg.Counter("egd_evictions_total").Add(uint64(r.Evictions))
	reg.Gauge("egd_run_elapsed_nanos").Set(r.Elapsed.Nanoseconds())

	for _, rs := range r.Metrics.Phases {
		rank := strconv.Itoa(rs.Rank)
		for _, p := range rs.Phases {
			reg.Counter(metrics.Name("egd_phase_calls_total", "phase", p.Phase, "rank", rank)).Add(p.Calls)
			reg.Gauge(metrics.Name("egd_phase_nanos", "phase", p.Phase, "rank", rank)).Set(p.Nanos)
		}
		if cs := rs.Cache; cs != nil {
			reg.Counter(metrics.Name("egd_payoff_cache_hits_total", "rank", rank)).Add(cs.Hits)
			reg.Counter(metrics.Name("egd_payoff_cache_misses_total", "rank", rank)).Add(cs.Misses)
			reg.Counter(metrics.Name("egd_payoff_cache_evictions_total", "rank", rank)).Add(cs.Evictions)
			reg.Gauge(metrics.Name("egd_payoff_cache_entries", "rank", rank)).Set(int64(cs.Entries))
		}
	}
	for _, cs := range r.Metrics.Comm {
		rank := strconv.Itoa(cs.Rank)
		for _, tt := range cs.SentByTag {
			tag := mpi.TagLabel(tt.Tag)
			reg.Counter(metrics.Name("egd_comm_sent_messages_total", "rank", rank, "tag", tag)).Add(tt.Msgs)
			reg.Counter(metrics.Name("egd_comm_sent_bytes_total", "rank", rank, "tag", tag)).Add(tt.Bytes)
		}
		for _, tt := range cs.RecvByTag {
			tag := mpi.TagLabel(tt.Tag)
			reg.Counter(metrics.Name("egd_comm_recv_messages_total", "rank", rank, "tag", tag)).Add(tt.Msgs)
			reg.Counter(metrics.Name("egd_comm_recv_bytes_total", "rank", rank, "tag", tag)).Add(tt.Bytes)
		}
		for _, co := range cs.Collectives {
			reg.Counter(metrics.Name("egd_comm_collective_calls_total", "op", co.Op, "rank", rank)).Add(co.Calls)
			reg.Gauge(metrics.Name("egd_comm_collective_nanos", "op", co.Op, "rank", rank)).Set(co.Nanos)
		}
		if cs.Heartbeats > 0 {
			reg.Counter(metrics.Name("egd_comm_heartbeats_wallclock_total", "rank", rank)).Add(cs.Heartbeats)
		}
		if cs.Evicted {
			reg.Gauge(metrics.Name("egd_evicted", "rank", rank)).Set(1)
		}
	}
	if ts := r.Metrics.Transport; ts != nil {
		// Wire traffic depends on real-time behaviour (beat cadence,
		// reconnects), so the transport series carry the _wallclock_total
		// marker and are stripped from deterministic snapshots.
		for _, c := range []struct {
			name string
			v    uint64
		}{
			{"frames_sent", ts.FramesSent},
			{"frames_recv", ts.FramesRecv},
			{"bytes_sent", ts.BytesSent},
			{"bytes_recv", ts.BytesRecv},
			{"beats_sent", ts.BeatsSent},
			{"beats_recv", ts.BeatsRecv},
			{"resends", ts.Resends},
			{"dups_dropped", ts.DupsDropped},
			{"reconnects", ts.Reconnects},
			{"redials", ts.Redials},
			{"decode_errs", ts.DecodeErrs},
		} {
			reg.Counter("egd_transport_" + c.name + "_wallclock_total").Add(c.v)
		}
	}
	return reg
}
