package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/mpi"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// assertSameOutcome pins the whole-run outputs a recovered run must
// reproduce bit for bit: final strategies, final fitness, and cumulative
// counters. (The sampled series are excluded: a resumed segment only
// observes generations since the last restart.)
func assertSameOutcome(t *testing.T, clean, got *Result) {
	t.Helper()
	if clean.Counters != got.Counters {
		t.Fatalf("counters differ: %+v vs %+v", clean.Counters, got.Counters)
	}
	if len(clean.Final) != len(got.Final) {
		t.Fatal("final population sizes differ")
	}
	for i := range clean.Final {
		if !clean.Final[i].Equal(got.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range clean.FinalFitness {
		if clean.FinalFitness[i] != got.FinalFitness[i] {
			t.Fatalf("final fitness %d differs: %v vs %v", i, clean.FinalFitness[i], got.FinalFitness[i])
		}
	}
}

// The acceptance scenario for the fault-tolerant engine: kill worker rank 2
// at its 500th send mid-run; with CheckpointEvery=100 the supervisor must
// restore the latest snapshot and finish with a Result — strategies,
// counters, fitness — bit-identical to a run that never saw the fault.
func TestResilientKillRecoversBitExact(t *testing.T) {
	cfg := testConfig(1, 8, 600)
	cfg.Seed = 301
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	faulty := cfg
	faulty.CheckpointEvery = 100
	faulty.CheckpointSink = NewMemorySink()
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(2, 500)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallelResilient(faulty, 4, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if !faulty.FaultPlan.Faults()[0].Fired() {
		t.Fatal("scripted kill never fired")
	}
	assertSameOutcome(t, clean, res)

	if n := faulty.EventLog.Count(trace.EventFault); n != 1 {
		t.Errorf("fault events = %d, want 1", n)
	}
	if n := faulty.EventLog.Count(trace.EventRecovery); n != 1 {
		t.Errorf("recovery events = %d, want 1", n)
	}
	if n := faulty.EventLog.Count(trace.EventCheckpoint); n < 6 {
		t.Errorf("checkpoint events = %d, want >= 6 (600 gens / every 100)", n)
	}
}

// Parallel checkpoint→resume parity: run N generations with periodic
// snapshots, then resume the latest snapshot for the remaining M on a
// different rank count; the stitched run must equal the uninterrupted N+M
// run bit for bit, counters included.
func TestParallelCheckpointResumeParity(t *testing.T) {
	cfg := testConfig(1, 8, 90)
	cfg.Seed = 302
	cfg.FullRecompute = true

	full, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	sink := NewMemorySink()
	first := cfg
	first.Generations = 50
	first.CheckpointEvery = 25
	first.CheckpointSink = sink
	if _, err := RunParallel(first, 4); err != nil {
		t.Fatal(err)
	}
	if sink.Saves() != 2 {
		t.Fatalf("saves = %d, want 2 (generations 25 and 50)", sink.Saves())
	}
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 50 {
		t.Fatalf("latest snapshot at generation %d, want 50", snap.Generation)
	}

	second := cfg
	second.Generations = 40
	second.StartGeneration = int(snap.Generation)
	second.InitialStrategies = snap.Strategies
	second.BaseCounters = runToCounters(snap.Counters)
	resumed, err := RunParallel(second, 6)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, full, resumed)
}

// A stalled worker (delayed send outlasting the receive deadline) must be
// detected as a timeout, attributed to a rank, and recovered from.
func TestResilientRecoversFromStalledWorker(t *testing.T) {
	cfg := testConfig(1, 6, 60)
	cfg.Seed = 303
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	faulty := cfg
	faulty.CheckpointEvery = 10
	faulty.CheckpointSink = NewMemorySink()
	faulty.RecvTimeout = 150 * time.Millisecond
	// The stall is windowed on the send counter, not one-shot, so restarts
	// that pass through send 40 stall again; each attempt still advances
	// the checkpoint frontier, so a generous restart budget converges.
	faulty.FaultPlan = mpi.NewFaultPlan().Delay(2, 40, 1, 600*time.Millisecond)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallelResilient(faulty, 3, RestartPolicy{MaxRestarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatal("stall never triggered a recovery")
	}
	for i := range clean.Final {
		if !clean.Final[i].Equal(res.Final[i]) {
			t.Fatalf("final strategy %d differs after stall recovery", i)
		}
	}
	// The detection path must have been a timeout, not a generic abort.
	events := faulty.EventLog.Events()
	sawTimeout := false
	for _, e := range events {
		if e.Kind == trace.EventFault && strings.Contains(e.Detail, "timed out") {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatalf("no timeout fault recorded; events: %+v", events)
	}
}

// Degraded restart: after a worker dies the supervisor continues on one
// fewer rank. The trajectory is rank-count-invariant, so the result must
// still match the clean run.
func TestResilientDegradesToFewerRanks(t *testing.T) {
	cfg := testConfig(1, 8, 120)
	cfg.Seed = 304
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}

	faulty := cfg
	faulty.CheckpointEvery = 40
	faulty.CheckpointSink = NewMemorySink()
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(3, 100)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallelResilient(faulty, 5, RestartPolicy{Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 4 {
		t.Fatalf("ranks after degrade = %d, want 4", res.Ranks)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if n := faulty.EventLog.Count(trace.EventDegrade); n != 1 {
		t.Errorf("degrade events = %d, want 1", n)
	}
	assertSameOutcome(t, clean, res)
}

// Incremental (dirty-tracking) mode also recovers exactly — the resume
// replays every pair once at the restore generation, which inflates
// GamesPlayed but leaves the trajectory untouched for deterministic games.
func TestResilientIncrementalModeRecovers(t *testing.T) {
	cfg := testConfig(1, 8, 300)
	cfg.Seed = 305

	clean, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	faulty := cfg
	faulty.CheckpointEvery = 50
	faulty.CheckpointSink = NewMemorySink()
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(2, 250)
	res, err := RunParallelResilient(faulty, 4, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	for i := range clean.Final {
		if !clean.Final[i].Equal(res.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range clean.FinalFitness {
		if clean.FinalFitness[i] != res.FinalFitness[i] {
			t.Fatalf("final fitness %d differs", i)
		}
	}
	if clean.Counters.PCEvents != res.Counters.PCEvents ||
		clean.Counters.Adoptions != res.Counters.Adoptions ||
		clean.Counters.Mutations != res.Counters.Mutations {
		t.Fatalf("event counters differ: %+v vs %+v", clean.Counters, res.Counters)
	}
	if res.Counters.GamesPlayed < clean.Counters.GamesPlayed {
		t.Fatalf("recovered run played fewer games (%d) than clean (%d)",
			res.Counters.GamesPlayed, clean.Counters.GamesPlayed)
	}
}

func TestResilientGivesUpWhenBudgetExhausted(t *testing.T) {
	cfg := testConfig(1, 6, 50)
	cfg.Seed = 306
	// Two scripted kills with staggered thresholds (a shared threshold
	// would consume both on the same send): the first takes down the
	// initial run, the second the single permitted restart.
	cfg.FaultPlan = mpi.NewFaultPlan().Kill(1, 5).Kill(1, 6)
	cfg.EventLog = trace.NewEventLog()
	_, err := RunParallelResilient(cfg, 3, RestartPolicy{MaxRestarts: 1})
	if err == nil {
		t.Fatal("exhausted restart budget did not surface an error")
	}
	if !errors.Is(err, mpi.ErrInjectedFault) {
		t.Fatalf("give-up error lost the root cause: %v", err)
	}
	if n := cfg.EventLog.Count(trace.EventGiveUp); n != 1 {
		t.Errorf("give-up events = %d, want 1", n)
	}
	if n := cfg.EventLog.Count(trace.EventFault); n != 2 {
		t.Errorf("fault events = %d, want 2", n)
	}
}

func TestResilientRejectsBadInputsUpFront(t *testing.T) {
	cfg := testConfig(1, 6, 10)
	if _, err := RunParallelResilient(cfg, 1, RestartPolicy{}); err == nil {
		t.Fatal("1 rank accepted")
	}
	bad := cfg
	bad.Memory = 0
	if _, err := RunParallelResilient(bad, 3, RestartPolicy{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestResilientRejectsForeignCheckpoint(t *testing.T) {
	// A sink holding a snapshot from a different run must fail the restart
	// fast instead of silently forking the trajectory.
	cfg := testConfig(1, 4, 40)
	cfg.Seed = 307
	sink := NewMemorySink()
	sp := strategy.NewSpace(1)
	foreign := &checkpoint.Snapshot{
		Generation: 10, Seed: 999, Memory: 1,
		Strategies: []strategy.Strategy{
			strategy.AllC(sp), strategy.AllD(sp), strategy.TFT(sp), strategy.WSLS(sp),
		},
	}
	if err := sink.Save(foreign); err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointEvery = 50 // beyond the run: the foreign snapshot survives
	cfg.CheckpointSink = sink
	cfg.FaultPlan = mpi.NewFaultPlan().Kill(1, 1)
	_, err := RunParallelResilient(cfg, 3, RestartPolicy{})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("foreign checkpoint not rejected: %v", err)
	}
}

func TestResilientWithoutFaultsIsPlainRun(t *testing.T) {
	cfg := testConfig(1, 6, 40)
	cfg.Seed = 308
	clean, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallelResilient(cfg, 3, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0", res.Restarts)
	}
	assertSameTrajectory(t, clean, res)
}
