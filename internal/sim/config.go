// Package sim implements the paper's evolutionary game dynamics: Strategy
// Sets (SSets) of agents playing the Iterated Prisoner's Dilemma against
// every other SSet's strategy (game dynamics, §IV-A), evolved by a Nature
// Agent through Fermi pairwise-comparison learning and random mutation
// (population dynamics, §IV-B).
//
// Two engines produce bit-identical trajectories from the same seed:
//
//   - RunSequential: a single-threaded reference implementation;
//   - RunParallel: the paper's SPMD decomposition over the mpi runtime —
//     rank 0 is the Nature Agent, the remaining ranks own block-distributed
//     SSets, fitness travels point-to-point, selections and strategy
//     updates travel by broadcast.
//
// Fitness evaluation supports the paper's every-generation full recompute
// (FullRecompute, used in its timing studies) and an incremental mode that
// exploits the fact that payoffs only change when a strategy changes —
// letting long trajectories such as the Fig. 2 WSLS validation run at
// laptop scale with identical dynamics.
package sim

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// StrategyKind selects the strategy representation evolved by the run.
type StrategyKind int

const (
	// PureStrategies evolves deterministic bit-table strategies (the
	// paper's scaling studies).
	PureStrategies StrategyKind = iota
	// MixedStrategies evolves probabilistic strategies (the paper's Fig. 2
	// WSLS validation, following Nowak & Sigmund).
	MixedStrategies
)

// Config parameterises a simulation run. Zero values are replaced by the
// paper's defaults in Validate where noted.
type Config struct {
	// Memory is the strategy memory depth n in [1,6].
	Memory int
	// NumSSets is the number of Strategy Sets (the population of
	// strategies).
	NumSSets int
	// AgentsPerSSet is the number of agents sharing each SSet's strategy.
	// The paper sets it equal to NumSSets so each agent plays exactly one
	// opponent per generation; 0 selects that default. It determines the
	// work decomposition and the agent population size reported by
	// PopulationSize, not the dynamics.
	AgentsPerSSet int
	// Generations is the number of evolution steps.
	Generations int
	// Rules are the per-match IPD parameters; a zero value selects the
	// paper's defaults (payoff [3,0,4,1], 200 rounds, no errors).
	Rules game.Rules
	// PCRate is the per-generation probability of a pairwise-comparison
	// learning event (paper: 0.10 for production, 0.01 in the Table VI
	// scaling runs). Zero keeps zero; set explicitly.
	PCRate float64
	// Mu is the per-generation probability of a random mutation replacing
	// a random SSet's strategy (paper: 0.05).
	Mu float64
	// Beta is the Fermi selection intensity (Equation 1). The paper does
	// not publish its value; 1.0 gives moderately strong selection on
	// per-round payoff differences.
	Beta float64
	// Kind selects pure or mixed strategies.
	Kind StrategyKind
	// Seed drives every random decision; identical seeds give identical
	// trajectories on both engines at any rank count.
	Seed uint64
	// FullRecompute forces every SSet's fitness to be recomputed every
	// generation, as the paper's timing studies do. When false, fitness is
	// recomputed only when a strategy changes (identical dynamics for
	// deterministic games; for mixed strategies the cached payoff stands in
	// for resampling, trading sampling noise for tractable long runs).
	FullRecompute bool
	// AllowWorseAdoption, when true, uses the unconditional Fermi rule
	// (Traulsen et al.): the learner may adopt a worse-scoring teacher with
	// probability < 1/2. When false (default) the paper's explicit gate
	// applies: adoption only if the teacher's fitness is strictly higher.
	AllowWorseAdoption bool
	// UseSearchEngine selects the paper-faithful linear find_state lookup
	// in the IPD inner loop instead of direct indexing (ablation).
	UseSearchEngine bool
	// ExactPayoffs replaces the finite sampled match (Rules.Rounds rounds)
	// with the exact infinite-game payoff from the Markov stationary
	// analysis — the evaluation the original Nowak-Sigmund study used.
	// Execution errors still apply (folded into the chain); Rules.Rounds is
	// ignored. Mutually exclusive with UseSearchEngine.
	ExactPayoffs bool
	// PayoffCache enables the per-rank strategy-pair payoff memo: matches
	// whose outcome is a pure function of the two behaviour tables and the
	// rules (exact mode, or error-free deterministic strategies) are served
	// from a bounded LRU keyed by canonical fingerprint instead of being
	// replayed. Trajectories are bit-identical with the cache on or off —
	// pairs whose outcome depends on the random stream bypass it — and
	// entries survive mutations, adoptions, and checkpoint resumes because
	// the key is behavioural content, not object identity. Hit/miss/eviction
	// counters surface through Result.Metrics when Metrics is also set. See
	// docs/KERNEL.md.
	PayoffCache bool
	// PayoffCacheSize bounds the cache to this many entries per rank
	// (0 selects game.DefaultPairCacheSize). Ignored unless PayoffCache.
	PayoffCacheSize int
	// SampleStride keeps every k-th generation in the recorded time series
	// (0 selects an automatic stride bounding series length to ~1000).
	SampleStride int
	// Observer, when non-nil, is invoked after every generation with the
	// current population snapshot. It runs on the Nature Agent.
	Observer Observer
	// Control, when non-nil, is polled at the top of every generation (on
	// the Nature rank in the parallel engine, where it also tells the
	// workers to unwind). A non-nil return stops the run at that generation
	// boundary: the engine persists a resume snapshot to CheckpointSink
	// (when one is configured) and returns an error wrapping both
	// ErrStopped and the hook's error. Pause/cancel in a hosting service
	// builds on this: resume the stopped run from the persisted snapshot
	// via InitialStrategies / StartGeneration / BaseCounters and the
	// trajectory continues bit-identically (for deterministic games).
	Control func(gen int) error
	// InitialStrategies, when non-nil, seeds the population (e.g. resuming
	// from a checkpoint) instead of random initialisation. Length must
	// equal NumSSets and every strategy must live in the Memory space.
	// Strategies are cloned; the caller's slice is not retained.
	InitialStrategies []strategy.Strategy
	// StartGeneration offsets the generation counter. Every per-generation
	// random stream is keyed by the absolute generation number, so a run
	// resumed from generation g's snapshot with StartGeneration = g
	// continues the original trajectory exactly (bit-identical for
	// deterministic games; for mixed strategies the resumed run resamples
	// cached match-ups once at the resume point).
	StartGeneration int
	// CheckpointEvery makes the Nature Agent persist a snapshot to
	// CheckpointSink every k completed generations (0 disables). The
	// snapshot captures strategies and cumulative counters — everything a
	// resume needs, since per-generation randomness re-derives from (Seed,
	// generation).
	CheckpointEvery int
	// CheckpointSink receives periodic snapshots; required when
	// CheckpointEvery > 0.
	CheckpointSink CheckpointSink
	// CheckpointSeries includes the sampled mean-fitness and cooperation
	// series (up to the snapshot generation) in every snapshot written to
	// CheckpointSink. A service that resumes a killed run from such a
	// snapshot can then serve a stitched series identical to an
	// uninterrupted run's — the series samples before the resume point
	// would otherwise exist only in the dead process's memory. Collection
	// never feeds back into the trajectory; snapshots merely grow by the
	// retained sample points (encoded as checkpoint stream version 3).
	CheckpointSeries bool
	// BaseCounters seeds the run's counters, so a run resumed from a
	// snapshot reports cumulative totals identical to an uninterrupted one.
	BaseCounters Counters
	// RecvTimeout, when positive, bounds every blocking receive in the
	// parallel engine (including collective-internal ones): a rank stalled
	// past the deadline fails with mpi.ErrRecvTimeout instead of hanging —
	// the detection half of worker-failure recovery. It must comfortably
	// exceed the longest per-generation compute phase.
	RecvTimeout time.Duration
	// FaultPlan, when non-nil, is installed into the parallel engine's
	// world: scripted deterministic fault injection for resilience tests.
	FaultPlan *mpi.FaultPlan
	// EventLog, when non-nil, receives fault-tolerance events (checkpoints
	// written, recoveries performed, ranks evicted) from the engine and
	// supervisor.
	EventLog *trace.EventLog
	// Evict enables live rank eviction in the parallel engine: a heartbeat
	// detector declares dead ranks, survivors agree on the surviving set and
	// shrink onto a sub-communicator, the dead rank's SSets are re-sharded
	// across the survivors, and the interrupted generation is replayed from
	// its generation-keyed random streams — no restart, and (with
	// FullRecompute) results bit-identical to a fault-free run. Replayed
	// generations re-invoke the Observer, as checkpoint restarts do.
	Evict bool
	// HeartbeatEvery is the liveness tick period when Evict is set (0
	// selects mpi.DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive missed heartbeat deadlines
	// declare a rank dead (0 selects mpi.DefaultHeartbeatMisses).
	HeartbeatMisses int
	// MinRanks is the smallest world live eviction may shrink to; below it
	// the engine falls back to checkpoint-restart (values < 2 mean 2, the
	// engine's floor of Nature plus one worker).
	MinRanks int
	// Metrics enables the observability layer: per-rank phase timers in
	// both engines and per-rank communication accounting in the parallel
	// one, aggregated into Result.Metrics at run end. Collection never
	// feeds back into the trajectory — parity and bit-exactness hold with
	// it on or off (see docs/OBSERVABILITY.md).
	Metrics bool
}

// Observer receives per-generation callbacks from the Nature Agent.
type Observer interface {
	// Generation is called after generation gen's evolution step with the
	// population (valid only during the call) and the generation's events.
	Generation(gen int, pop *Population, ev Events)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(gen int, pop *Population, ev Events)

// Generation implements Observer.
func (f ObserverFunc) Generation(gen int, pop *Population, ev Events) { f(gen, pop, ev) }

// Events records what the Nature Agent did in one generation.
type Events struct {
	// PCOccurred reports whether a pairwise comparison event fired.
	PCOccurred bool
	// Teacher and Learner are the compared SSets when PCOccurred.
	Teacher, Learner int
	// Adopted reports whether the learner copied the teacher's strategy.
	Adopted bool
	// MutationOccurred reports whether a random strategy replaced an SSet.
	MutationOccurred bool
	// Mutant is the SSet that received a new strategy when
	// MutationOccurred.
	Mutant int
}

// Default simulation parameters from the paper's §V-C.
const (
	DefaultPCRate = 0.10
	DefaultMu     = 0.05
	DefaultBeta   = 1.0
)

// DefaultConfig returns the paper's standard configuration for the given
// memory depth and population, with a 1000-generation run.
func DefaultConfig(memory, numSSets int) Config {
	return Config{
		Memory:      memory,
		NumSSets:    numSSets,
		Generations: 1000,
		Rules:       game.DefaultRules(),
		PCRate:      DefaultPCRate,
		Mu:          DefaultMu,
		Beta:        DefaultBeta,
	}
}

// Validate normalises defaults and checks the configuration.
func (c *Config) Validate() error {
	if c.Memory < 1 || c.Memory > 6 {
		return fmt.Errorf("sim: memory %d out of [1,6]", c.Memory)
	}
	if c.NumSSets < 2 {
		return fmt.Errorf("sim: need >= 2 SSets, got %d", c.NumSSets)
	}
	if c.AgentsPerSSet == 0 {
		c.AgentsPerSSet = c.NumSSets
	}
	if c.AgentsPerSSet < 1 {
		return fmt.Errorf("sim: agents per SSet %d < 1", c.AgentsPerSSet)
	}
	if c.Generations < 0 {
		return fmt.Errorf("sim: negative generations %d", c.Generations)
	}
	if c.Rules == (game.Rules{}) {
		c.Rules = game.DefaultRules()
	}
	if err := c.Rules.Validate(); err != nil {
		return err
	}
	// The negated comparisons reject NaN too: a NaN rate satisfies neither
	// bound yet would silently poison every downstream probability.
	if !(c.PCRate >= 0 && c.PCRate <= 1) {
		return fmt.Errorf("sim: PC rate %v out of [0,1]", c.PCRate)
	}
	if !(c.Mu >= 0 && c.Mu <= 1) {
		return fmt.Errorf("sim: mutation rate %v out of [0,1]", c.Mu)
	}
	if !(c.Beta >= 0) {
		return fmt.Errorf("sim: beta %v < 0", c.Beta)
	}
	if c.SampleStride < 0 {
		return fmt.Errorf("sim: sample stride %v < 0", c.SampleStride)
	}
	if c.SampleStride == 0 {
		c.SampleStride = c.Generations/1000 + 1
	}
	if c.StartGeneration < 0 {
		return fmt.Errorf("sim: negative start generation %d", c.StartGeneration)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("sim: negative checkpoint interval %d", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.CheckpointSink == nil {
		return fmt.Errorf("sim: CheckpointEvery %d set without a CheckpointSink", c.CheckpointEvery)
	}
	if c.RecvTimeout < 0 {
		return fmt.Errorf("sim: negative receive timeout %v", c.RecvTimeout)
	}
	if c.HeartbeatEvery < 0 {
		return fmt.Errorf("sim: negative heartbeat period %v", c.HeartbeatEvery)
	}
	if c.HeartbeatMisses < 0 {
		return fmt.Errorf("sim: negative heartbeat miss budget %d", c.HeartbeatMisses)
	}
	if c.MinRanks < 0 {
		return fmt.Errorf("sim: negative rank floor %d", c.MinRanks)
	}
	if c.ExactPayoffs && c.UseSearchEngine {
		return fmt.Errorf("sim: ExactPayoffs and UseSearchEngine are mutually exclusive")
	}
	if c.PayoffCacheSize < 0 {
		return fmt.Errorf("sim: negative payoff cache size %d", c.PayoffCacheSize)
	}
	if c.ExactPayoffs {
		// Probe exact-mode computability once, up front: a job whose Markov
		// analysis cannot run (rules the chain solver rejects) must fail
		// validation here rather than surface mid-run from playPair.
		probe := strategy.AllC(strategy.NewSpace(c.Memory))
		if _, _, err := analysis.MarkovPayoffN(c.Rules.Payoff, probe, probe, c.Rules.ErrorRate); err != nil {
			return fmt.Errorf("sim: exact payoffs not computable for this configuration: %w", err)
		}
	}
	if c.InitialStrategies != nil {
		if len(c.InitialStrategies) != c.NumSSets {
			return fmt.Errorf("sim: %d initial strategies for %d SSets", len(c.InitialStrategies), c.NumSSets)
		}
		sp := strategy.NewSpace(c.Memory)
		for i, s := range c.InitialStrategies {
			if s == nil {
				return fmt.Errorf("sim: nil initial strategy %d", i)
			}
			if s.Space() != sp {
				return fmt.Errorf("sim: initial strategy %d is not memory-%d", i, c.Memory)
			}
		}
	}
	return nil
}

// PopulationSize returns the total number of agents,
// NumSSets * AgentsPerSSet. With the paper's default AgentsPerSSet ==
// NumSSets this grows as the square of the SSet count (the mechanism behind
// its 10^18-agent populations).
func (c Config) PopulationSize() uint64 {
	return uint64(c.NumSSets) * uint64(c.AgentsPerSSet)
}

// GamesPerGeneration returns the number of two-player IPD matches one
// generation requires: every SSet measures its strategy against every other
// SSet's strategy.
func (c Config) GamesPerGeneration() uint64 {
	s := uint64(c.NumSSets)
	return s * (s - 1)
}

// OpponentsPerAgent returns how many opposing SSets each agent handles per
// generation (the paper's s/a split).
func (c Config) OpponentsPerAgent() float64 {
	return float64(c.NumSSets-1) / float64(c.AgentsPerSSet)
}

// AgentsPerProcessor returns the agent load per processor when the
// population is spread over procs processors (Table VIII of the paper).
func (c Config) AgentsPerProcessor(procs int) float64 {
	if procs < 1 {
		panic("sim: AgentsPerProcessor needs procs >= 1")
	}
	return float64(c.PopulationSize()) / float64(procs)
}
