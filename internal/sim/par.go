package sim

import (
	"fmt"
	"time"

	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// Point-to-point tags used by the parallel engine.
const (
	tagFitness = 1 // owner -> Nature: payoff segment of a selected SSet
	tagRows    = 2 // owner -> Nature: final payoff block
)

// The work decomposition follows both of the paper's parallelism levels:
// the S×(S-1) matches of a generation form a flat, i-major list of game
// pairs, block-distributed over the worker ranks. When there are fewer
// workers than SSets a worker owns several whole rows (SSets); when there
// are more, a single SSet's row spans several workers — the paper's
// "agents within each strategy group" level, where each agent handles s/a
// opponents ("each processor handles the agents of between 1/2 to 8 full
// SSets", §VI-B).
//
// Bit-exact parity with the sequential engine is preserved by reassembling
// fitness in j-order: sequential fitness sums a row's payoffs left to
// right, so the Nature Agent concatenates the owners' contiguous segments
// in ascending column order and folds them in exactly that order.

// pairToIJ unflattens pair index i*(S-1)+jIdx into (i, j), with jIdx
// skipping the diagonal.
func pairToIJ(s, pair int) (i, j int) {
	i = pair / (s - 1)
	jIdx := pair % (s - 1)
	j = jIdx
	if jIdx >= i {
		j = jIdx + 1
	}
	return i, j
}

// blockRange returns worker w's contiguous range of the n work items
// (block-distributed, remainders to the leading workers).
func blockRange(n, nWorkers, w int) (lo, hi int) {
	base := n / nWorkers
	rem := n % nWorkers
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// rowSegment is one worker's contiguous piece of an SSet's game row.
type rowSegment struct {
	worker int // worker index (0-based)
	lo, hi int // pair-index range within the global flat list
}

// rowSegments lists, in ascending column order, the workers owning pieces
// of SSet i's row of games.
func rowSegments(s, nWorkers, i int) []rowSegment {
	rowLo := i * (s - 1)
	rowHi := rowLo + (s - 1)
	var segs []rowSegment
	for w := 0; w < nWorkers; w++ {
		lo, hi := blockRange(s*(s-1), nWorkers, w)
		if hi <= rowLo || lo >= rowHi {
			continue
		}
		segs = append(segs, rowSegment{worker: w, lo: max(lo, rowLo), hi: min(hi, rowHi)})
	}
	return segs
}

// update is the Nature Agent's end-of-generation broadcast: the strategy
// changes every rank must apply to its global view (paper §V-B, "global
// strategy updates" over the collective network).
type update struct {
	Adopted          bool
	Learner, Teacher int
	Mutated          bool
	Mutant           int
	MutantStrategy   strategy.Strategy
	// MeanFitnessWanted tells workers to join a fitness reduction for the
	// observability series this generation.
	MeanFitnessWanted bool
}

// WireBytes models the broadcast payload size for the communication
// counters: a few header words plus the mutant strategy table when present.
func (u update) WireBytes() uint64 {
	n := uint64(6 * 8)
	if u.MutantStrategy != nil {
		states := uint64(u.MutantStrategy.Space().NumStates())
		if _, ok := u.MutantStrategy.(*strategy.Mixed); ok {
			n += states * 8
		} else {
			n += states / 8
		}
	}
	return n
}

// selection is the Nature Agent's mid-generation broadcast: which SSets are
// being compared (paper: "alerting of the SSets selected for pairwise
// comparison"). PC false means no comparison this generation.
type selection struct {
	PC               bool
	Teacher, Learner int
}

// WireBytes models the selection broadcast payload.
func (selection) WireBytes() uint64 { return 3 * 8 }

// RunParallel executes the simulation on a world of `ranks` goroutine
// ranks: rank 0 is the Nature Agent, ranks 1..ranks-1 own block-distributed
// game pairs — the paper's Blue Gene mapping, including the agents-within-
// SSet split when workers outnumber SSets. The trajectory is identical to
// RunSequential with the same Config for every rank count.
//
// ranks must be at least 2; workers may not outnumber the games of one
// generation, S×(S-1).
func RunParallel(cfg Config, ranks int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranks < 2 {
		return nil, fmt.Errorf("sim: parallel engine needs >= 2 ranks (Nature + workers), got %d", ranks)
	}
	nWorkers := ranks - 1
	totalGames := cfg.NumSSets * (cfg.NumSSets - 1)
	if nWorkers > totalGames {
		return nil, fmt.Errorf("sim: %d workers exceed %d games per generation", nWorkers, totalGames)
	}

	world := mpi.NewWorld(ranks)
	if cfg.FaultPlan != nil {
		world.InstallFaultPlan(cfg.FaultPlan)
	}
	if cfg.RecvTimeout > 0 {
		world.SetRecvTimeout(cfg.RecvTimeout)
	}
	var result *Result
	start := time.Now()
	err := world.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			res, err := natureRank(cfg, c)
			if err != nil {
				return err
			}
			result = res
			return nil
		}
		return workerRank(cfg, c)
	})
	if err != nil {
		return nil, err
	}
	result.Elapsed = time.Since(start)
	result.Ranks = ranks
	return result, nil
}

// natureRank is rank 0: the paper's Nature Agent. It keeps the global
// strategy view, drives the evolutionary schedule, gathers selected
// fitness values point-to-point, and broadcasts selections and updates.
func natureRank(cfg Config, c *mpi.Comm) (*Result, error) {
	master := rng.New(cfg.Seed)
	pop := NewPopulation(cfg, master) // global strategy view (payoffs unused here)
	nWorkers := c.Size() - 1
	s := cfg.NumSSets
	res := &Result{Counters: cfg.BaseCounters}
	res.MeanFitness, _ = stats.NewSeries(cfg.SampleStride)
	res.Cooperation, _ = stats.NewSeries(cfg.SampleStride)

	// recvFitness reassembles SSet i's fitness from its row segments,
	// folding payoffs in ascending column order so the floating-point sum
	// matches the sequential engine bit for bit.
	recvFitness := func(i int) (float64, error) {
		total := 0.0
		for _, seg := range rowSegments(s, nWorkers, i) {
			msg, err := c.Recv(1+seg.worker, tagFitness)
			if err != nil {
				return 0, err
			}
			for _, v := range msg.Payload.([]float64) {
				total += v
			}
		}
		return total / float64(s-1), nil
	}

	for gen := cfg.StartGeneration; gen < cfg.StartGeneration+cfg.Generations; gen++ {
		// Count the games the workers are scheduling this generation before
		// the dirty marks are cleared: the workers' refresh predicate plays
		// pair (i, j) iff FullRecompute or either side is dirty, so the
		// scheduled total is all pairs minus the clean×clean ones. Keeping
		// this tally on Nature lets snapshots carry an up-to-date
		// GamesPlayed without an every-generation reduction.
		if cfg.FullRecompute {
			res.Counters.GamesPlayed += uint64(s) * uint64(s-1)
		} else {
			dcount := 0
			for _, isDirty := range pop.dirty {
				if isDirty {
					dcount++
				}
			}
			clean := s - dcount
			res.Counters.GamesPlayed += uint64(s*(s-1) - clean*(clean-1))
		}
		pop.clearDirty()
		d := natureDecision(&cfg, master, gen)
		ev := Events{
			PCOccurred:       d.pc,
			Teacher:          d.teacher,
			Learner:          d.learner,
			MutationOccurred: d.mutate,
			Mutant:           d.mutant,
		}

		// Announce the PC selection to all ranks (collective network).
		sel := selection{PC: d.pc, Teacher: d.teacher, Learner: d.learner}
		if _, err := c.Bcast(0, sel); err != nil {
			return nil, err
		}

		var u update
		if d.pc {
			res.Counters.PCEvents++
			// The owners return the selected SSets' payoff segments
			// point-to-point (torus network in the paper); teacher first,
			// then learner, in segment order.
			piT, err := recvFitness(d.teacher)
			if err != nil {
				return nil, err
			}
			piL, err := recvFitness(d.learner)
			if err != nil {
				return nil, err
			}
			if resolveAdoption(&cfg, master, gen, piT, piL) {
				pop.Adopt(d.learner, d.teacher)
				u.Adopted = true
				u.Learner, u.Teacher = d.learner, d.teacher
				ev.Adopted = true
				res.Counters.Adoptions++
			}
		}
		if d.mutate {
			res.Counters.Mutations++
			mut := mutantStrategy(&cfg, master, pop.Space(), gen)
			pop.SetStrategy(d.mutant, mut)
			u.Mutated = true
			u.Mutant = d.mutant
			u.MutantStrategy = mut
		}
		u.MeanFitnessWanted = gen%cfg.SampleStride == 0

		// Broadcast the global strategy update (collective network).
		if _, err := c.Bcast(0, u); err != nil {
			return nil, err
		}

		if u.MeanFitnessWanted {
			// Join the workers' payoff reduction; Nature contributes 0.
			total, err := c.Reduce(0, 0, mpi.OpSum)
			if err != nil {
				return nil, err
			}
			res.MeanFitness.Observe(gen, total/float64(s*(s-1)))
			res.Cooperation.Observe(gen, pop.MeanCooperationProb())
		}
		if cfg.Observer != nil {
			cfg.Observer.Generation(gen, pop, ev)
		}
		// Checkpoint on absolute generation numbers, so a resumed run keeps
		// the original cadence instead of one phase-shifted by the restart.
		if cfg.CheckpointEvery > 0 && (gen+1)%cfg.CheckpointEvery == 0 {
			if err := saveSnapshot(&cfg, pop, gen+1, res.Counters); err != nil {
				return nil, err
			}
			if cfg.EventLog != nil {
				cfg.EventLog.Append(trace.Event{Kind: trace.EventCheckpoint, Generation: gen + 1, Rank: 0})
			}
		}
	}

	// Collect the final payoff blocks and compute all fitness values in
	// the sequential engine's order.
	flat := make([]float64, s*(s-1))
	for w := 0; w < nWorkers; w++ {
		msg, err := c.Recv(1+w, tagRows)
		if err != nil {
			return nil, err
		}
		lo, _ := blockRange(s*(s-1), nWorkers, w)
		copy(flat[lo:], msg.Payload.([]float64))
	}
	res.FinalFitness = make([]float64, s)
	for i := 0; i < s; i++ {
		total := 0.0
		for k := i * (s - 1); k < (i+1)*(s-1); k++ {
			total += flat[k]
		}
		res.FinalFitness[i] = total / float64(s-1)
	}
	// The workers' reduced game count cross-checks Nature's scheduled tally:
	// both sides evaluate the same refresh predicate, so any divergence
	// means the global views drifted apart.
	games, err := c.Reduce(0, 0, mpi.OpSum)
	if err != nil {
		return nil, err
	}
	if played := cfg.BaseCounters.GamesPlayed + uint64(games); played != res.Counters.GamesPlayed {
		return nil, fmt.Errorf("sim: workers played %d games, Nature scheduled %d — global views diverged",
			played, res.Counters.GamesPlayed)
	}
	res.Final = pop.Snapshot()
	return res, nil
}

// workerRank is ranks 1..P-1: it owns a contiguous block of game pairs,
// keeps the same global strategy view as Nature, plays its matches locally,
// and applies broadcast updates.
func workerRank(cfg Config, c *mpi.Comm) error {
	master := rng.New(cfg.Seed)
	pop := NewPopulation(cfg, master) // same deterministic initialisation
	nWorkers := c.Size() - 1
	w := c.Rank() - 1
	s := cfg.NumSSets
	lo, hi := blockRange(s*(s-1), nWorkers, w)
	var eng *game.SearchEngine
	if cfg.UseSearchEngine {
		eng = game.NewSearchEngine(pop.Space())
	}
	// payoffs[k-lo] is pair k's mean per-round payoff for its row SSet.
	payoffs := make([]float64, hi-lo)
	games := uint64(0)

	// refresh replays the owned pairs whose participants changed.
	refresh := func(gen int) {
		for k := lo; k < hi; k++ {
			i, j := pairToIJ(s, k)
			if cfg.FullRecompute || pop.dirty[i] || pop.dirty[j] {
				payoffs[k-lo] = playPair(&cfg, master, eng, gen, i, j, pop.strategies[i], pop.strategies[j])
				games++
			}
		}
	}
	// segment extracts the owned, contiguous payoff slice of SSet i's row
	// (nil when this worker owns none of it).
	segment := func(i int) []float64 {
		rowLo, rowHi := i*(s-1), (i+1)*(s-1)
		segLo, segHi := max(lo, rowLo), min(hi, rowHi)
		if segLo >= segHi {
			return nil
		}
		out := make([]float64, segHi-segLo)
		copy(out, payoffs[segLo-lo:segHi-lo])
		return out
	}

	for gen := cfg.StartGeneration; gen < cfg.StartGeneration+cfg.Generations; gen++ {
		// Game dynamics: replay this worker's pairs.
		refresh(gen)
		pop.clearDirty()

		// Receive the PC selection.
		selAny, err := c.Bcast(0, nil)
		if err != nil {
			return err
		}
		sel := selAny.(selection)
		if sel.PC {
			// Owners of the selected rows return their segments; teacher
			// before learner so Nature's ordered receives match when one
			// worker owns pieces of both.
			if seg := segment(sel.Teacher); seg != nil {
				if err := c.Send(0, tagFitness, seg); err != nil {
					return err
				}
			}
			if seg := segment(sel.Learner); seg != nil {
				if err := c.Send(0, tagFitness, seg); err != nil {
					return err
				}
			}
		}

		// Apply the global strategy update.
		uAny, err := c.Bcast(0, nil)
		if err != nil {
			return err
		}
		u := uAny.(update)
		if u.Adopted {
			pop.Adopt(u.Learner, u.Teacher)
		}
		if u.Mutated {
			pop.SetStrategy(u.Mutant, u.MutantStrategy.Clone())
		}
		if u.MeanFitnessWanted {
			partial := 0.0
			for _, v := range payoffs {
				partial += v
			}
			if _, err := c.Reduce(0, partial, mpi.OpSum); err != nil {
				return err
			}
		}
	}

	// Ship the final payoff block and the game counter to Nature.
	final := make([]float64, len(payoffs))
	copy(final, payoffs)
	if err := c.Send(0, tagRows, final); err != nil {
		return err
	}
	_, err := c.Reduce(0, float64(games), mpi.OpSum)
	return err
}
