package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// Point-to-point tags used by the parallel engine.
const (
	tagFitness = 1 // owner -> Nature: payoff segment of a selected SSet
	tagRows    = 2 // owner -> Nature: final payoff block
)

// The work decomposition follows both of the paper's parallelism levels:
// the S×(S-1) matches of a generation form a flat, i-major list of game
// pairs, block-distributed over the worker ranks. When there are fewer
// workers than SSets a worker owns several whole rows (SSets); when there
// are more, a single SSet's row spans several workers — the paper's
// "agents within each strategy group" level, where each agent handles s/a
// opponents ("each processor handles the agents of between 1/2 to 8 full
// SSets", §VI-B).
//
// Bit-exact parity with the sequential engine is preserved by reassembling
// fitness in j-order: sequential fitness sums a row's payoffs left to
// right, so the Nature Agent concatenates the owners' contiguous segments
// in ascending column order and folds them in exactly that order.

// pairToIJ unflattens pair index i*(S-1)+jIdx into (i, j), with jIdx
// skipping the diagonal.
func pairToIJ(s, pair int) (i, j int) {
	i = pair / (s - 1)
	jIdx := pair % (s - 1)
	j = jIdx
	if jIdx >= i {
		j = jIdx + 1
	}
	return i, j
}

// blockRange returns worker w's contiguous range of the n work items
// (block-distributed, remainders to the leading workers).
func blockRange(n, nWorkers, w int) (lo, hi int) {
	base := n / nWorkers
	rem := n % nWorkers
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// rowSegment is one worker's contiguous piece of an SSet's game row.
type rowSegment struct {
	worker int // worker index (0-based)
	lo, hi int // pair-index range within the global flat list
}

// rowSegments lists, in ascending column order, the workers owning pieces
// of SSet i's row of games.
func rowSegments(s, nWorkers, i int) []rowSegment {
	rowLo := i * (s - 1)
	rowHi := rowLo + (s - 1)
	var segs []rowSegment
	for w := 0; w < nWorkers; w++ {
		lo, hi := blockRange(s*(s-1), nWorkers, w)
		if hi <= rowLo || lo >= rowHi {
			continue
		}
		segs = append(segs, rowSegment{worker: w, lo: max(lo, rowLo), hi: min(hi, rowHi)})
	}
	return segs
}

// update is the Nature Agent's end-of-generation broadcast: the strategy
// changes every rank must apply to its global view (paper §V-B, "global
// strategy updates" over the collective network).
type update struct {
	Adopted          bool
	Learner, Teacher int
	Mutated          bool
	Mutant           int
	MutantStrategy   strategy.Strategy
	// MeanFitnessWanted tells workers to join a fitness reduction for the
	// observability series this generation.
	MeanFitnessWanted bool
}

// WireBytes models the broadcast payload size for the communication
// counters: a few header words plus the mutant strategy table when present.
func (u update) WireBytes() uint64 {
	n := uint64(6 * 8)
	if u.MutantStrategy != nil {
		states := uint64(u.MutantStrategy.Space().NumStates())
		if _, ok := u.MutantStrategy.(*strategy.Mixed); ok {
			n += states * 8
		} else {
			n += states / 8
		}
	}
	return n
}

// selection is the Nature Agent's mid-generation broadcast: which SSets are
// being compared (paper: "alerting of the SSets selected for pairwise
// comparison"). PC false means no comparison this generation.
type selection struct {
	PC               bool
	Teacher, Learner int
	// Stop tells workers the run is ending at this generation boundary on a
	// control-hook request (pause/cancel); no update broadcast follows and
	// every rank exits. It rides in the selection slot because workers play a
	// generation's games before hearing from Nature — this broadcast is the
	// first rendezvous where a stop can reach them.
	Stop bool
}

// WireBytes models the selection broadcast payload. Stop packs into the
// header words already counted, keeping the modelled size — and the pinned
// comm-byte accounting in the backend-parity tests — unchanged.
func (selection) WireBytes() uint64 { return 3 * 8 }

// resume is the Nature Agent's post-eviction broadcast on the shrunk
// communicator: the authoritative state every survivor replaces its own
// with. Workers may be behind (a dead mid-tree rank broke a broadcast relay)
// or ahead (buffered packets outran the failure) of Nature's position; a
// full-state resume makes the skew irrelevant.
type resume struct {
	// Gen is the generation the loop resumes at; Replay is the generation
	// whose random streams the full payoff recompute draws from
	// (min(Gen, last generation) — a finalization-phase resume replays the
	// final generation's streams).
	Gen, Replay int
	// Strategies is the global strategy view at the top of generation Gen.
	Strategies []strategy.Strategy
}

// WireBytes models the resume broadcast payload: two header words plus the
// full strategy tables.
func (r resume) WireBytes() uint64 {
	n := uint64(2 * 8)
	for _, s := range r.Strategies {
		states := uint64(s.Space().NumStates())
		if _, ok := s.(*strategy.Mixed); ok {
			n += states * 8
		} else {
			n += states / 8
		}
	}
	return n
}

// evictable reports whether an engine error is a rank failure that live
// eviction can recover from: a revoked communicator or any error carrying a
// *RankFailedError (poisoned sends, abort causes). The caller's own faults
// (an injected kill firing on this rank, say) are not evictable.
func evictable(err error) bool {
	if errors.Is(err, mpi.ErrRevoked) {
		return true
	}
	var rf *mpi.RankFailedError
	return errors.As(err, &rf)
}

// minRanksFloor normalises Config.MinRanks against the engine's floor of
// Nature plus one worker.
func minRanksFloor(cfg *Config) int { return max(cfg.MinRanks, 2) }

// RunParallel executes the simulation on a world of `ranks` goroutine
// ranks: rank 0 is the Nature Agent, ranks 1..ranks-1 own block-distributed
// game pairs — the paper's Blue Gene mapping, including the agents-within-
// SSet split when workers outnumber SSets. The trajectory is identical to
// RunSequential with the same Config for every rank count.
//
// ranks must be at least 2; workers may not outnumber the games of one
// generation, S×(S-1).
func RunParallel(cfg Config, ranks int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranks < 2 {
		return nil, fmt.Errorf("sim: parallel engine needs >= 2 ranks (Nature + workers), got %d", ranks)
	}
	nWorkers := ranks - 1
	totalGames := cfg.NumSSets * (cfg.NumSSets - 1)
	if nWorkers > totalGames {
		return nil, fmt.Errorf("sim: %d workers exceed %d games per generation", nWorkers, totalGames)
	}

	world := mpi.NewWorld(ranks)
	if cfg.Metrics {
		world.EnableMetrics()
	}
	if cfg.FaultPlan != nil {
		world.InstallFaultPlan(cfg.FaultPlan)
	}
	if cfg.RecvTimeout > 0 {
		world.SetRecvTimeout(cfg.RecvTimeout)
	}
	if cfg.Evict {
		world.EnableEviction(cfg.HeartbeatEvery, cfg.HeartbeatMisses)
	}
	var result *Result
	start := time.Now() //egdlint:allow determinism elapsed-time metadata for Result.Elapsed, not part of the trajectory
	err := world.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			res, err := natureRank(cfg, c)
			// On a control-hook stop res is the partial result (series up to
			// the stop); keep it so the caller can stitch across a pause.
			result = res
			return err
		}
		return workerRank(cfg, c)
	})
	if err != nil {
		return result, err
	}
	result.Elapsed = time.Since(start) //egdlint:allow determinism elapsed-time metadata, not part of the trajectory
	result.Evictions = len(world.Evictions())
	result.Ranks = ranks - result.Evictions
	if cfg.Metrics && result.Metrics != nil {
		result.Metrics.Comm = world.CommMetricsSnapshot()
		if cfg.EventLog != nil {
			stats := world.Stats()
			cfg.EventLog.Append(trace.Event{Kind: trace.EventMetrics, Generation: cfg.StartGeneration + cfg.Generations, Rank: -1,
				Detail: fmt.Sprintf("games=%d p2p_msgs=%d p2p_bytes=%d collectives=%d",
					result.Counters.GamesPlayed, stats.PointToPointMessages, stats.PointToPointBytes, stats.CollectiveOps)})
		}
	}
	return result, nil
}

// natureSnap is the Nature Agent's rollback point for live eviction:
// everything needed to replay the generation a failure interrupted.
// Strategy references can be shared because strategies are immutable —
// Adopt and SetStrategy replace entries, never mutate them in place.
type natureSnap struct {
	gen             int
	strategies      []strategy.Strategy
	dirty           []bool
	counters        Counters
	fitLen, coopLen int
}

// natureRank is rank 0: the paper's Nature Agent. It keeps the global
// strategy view, drives the evolutionary schedule, gathers selected
// fitness values point-to-point, and broadcasts selections and updates.
//
// With cfg.Evict, a detected rank failure is recovered live at the current
// generation boundary: Nature agrees with the survivors on the new rank
// set, shrinks onto it, rolls its state back to the top of the interrupted
// generation, and rebroadcasts that state so the survivors re-shard the
// dead rank's game pairs and replay the generation from its
// generation-keyed random streams — bit-identical to a fault-free run for
// deterministic games.
func natureRank(cfg Config, c *mpi.Comm) (*Result, error) {
	master := rng.New(cfg.Seed)
	pop := NewPopulation(cfg, master) // global strategy view (payoffs unused here)
	s := cfg.NumSSets
	end := cfg.StartGeneration + cfg.Generations
	res := &Result{Counters: cfg.BaseCounters}
	res.MeanFitness, _ = stats.NewSeries(cfg.SampleStride)
	res.Cooperation, _ = stats.NewSeries(cfg.SampleStride)

	gen := cfg.StartGeneration
	// pendingFull marks that the workers' next refresh replays every owned
	// pair (their payoff blocks were re-sharded by an eviction); crossCheck
	// counts the games scheduled since the last world (re)synchronisation,
	// mirroring the workers' local tallies, which reset on resume.
	pendingFull := false
	var crossCheck uint64
	var snap natureSnap
	seenEvictions := 0
	var pt *phaseTimer
	if cfg.Metrics {
		pt = newPhaseTimer()
	}

	logEvent := func(e trace.Event) {
		if cfg.EventLog != nil {
			cfg.EventLog.Append(e)
		}
	}
	takeSnap := func() {
		snap.gen = gen
		snap.strategies = append(snap.strategies[:0], pop.strategies...)
		snap.dirty = append(snap.dirty[:0], pop.dirty...)
		snap.counters = res.Counters
		snap.fitLen = res.MeanFitness.Len()
		snap.coopLen = res.Cooperation.Len()
	}
	restore := func() {
		gen = snap.gen
		copy(pop.strategies, snap.strategies)
		copy(pop.dirty, snap.dirty)
		res.Counters = snap.counters
		res.MeanFitness.Truncate(snap.fitLen)
		res.Cooperation.Truncate(snap.coopLen)
	}

	// recvFitness reassembles SSet i's fitness from its row segments,
	// folding payoffs in ascending column order so the floating-point sum
	// matches the sequential engine bit for bit — at any worker count,
	// which is what makes post-eviction re-sharding trajectory-invariant.
	recvFitness := func(c *mpi.Comm, i int) (float64, error) {
		total := 0.0
		for _, seg := range rowSegments(s, c.Size()-1, i) {
			msg, err := c.Recv(1+seg.worker, tagFitness)
			if err != nil {
				return 0, err
			}
			for _, v := range msg.Payload.([]float64) {
				total += v
			}
		}
		return total / float64(s-1), nil
	}

	oneGeneration := func(c *mpi.Comm) error {
		// Count the games the workers are scheduling this generation before
		// the dirty marks are cleared: the workers' refresh predicate plays
		// pair (i, j) iff FullRecompute or either side is dirty, so the
		// scheduled total is all pairs minus the clean×clean ones. Keeping
		// this tally on Nature lets snapshots carry an up-to-date
		// GamesPlayed without an every-generation reduction. A post-eviction
		// replay recomputes every pair.
		var scheduled uint64
		if pendingFull || cfg.FullRecompute {
			scheduled = uint64(s) * uint64(s-1)
		} else {
			dcount := 0
			for _, isDirty := range pop.dirty {
				if isDirty {
					dcount++
				}
			}
			clean := s - dcount
			scheduled = uint64(s*(s-1) - clean*(clean-1))
		}
		pendingFull = false
		res.Counters.GamesPlayed += scheduled
		crossCheck += scheduled
		pop.clearDirty()
		d := natureDecision(&cfg, master, gen)
		ev := Events{
			PCOccurred:       d.pc,
			Teacher:          d.teacher,
			Learner:          d.learner,
			MutationOccurred: d.mutate,
			Mutant:           d.mutant,
		}

		// Announce the PC selection to all ranks (collective network).
		sel := selection{PC: d.pc, Teacher: d.teacher, Learner: d.learner}
		tb := pt.begin()
		if _, err := c.Bcast(0, sel); err != nil {
			return err
		}
		pt.end(PhaseBroadcast, tb)

		var u update
		if d.pc {
			res.Counters.PCEvents++
			// The owners return the selected SSets' payoff segments
			// point-to-point (torus network in the paper); teacher first,
			// then learner, in segment order.
			tf := pt.begin()
			piT, err := recvFitness(c, d.teacher)
			if err != nil {
				return err
			}
			piL, err := recvFitness(c, d.learner)
			if err != nil {
				return err
			}
			pt.end(PhaseFitnessComm, tf)
			if resolveAdoption(&cfg, master, gen, piT, piL) {
				pop.Adopt(d.learner, d.teacher)
				u.Adopted = true
				u.Learner, u.Teacher = d.learner, d.teacher
				ev.Adopted = true
				res.Counters.Adoptions++
			}
		}
		if d.mutate {
			res.Counters.Mutations++
			mut := mutantStrategy(&cfg, master, pop.Space(), gen)
			pop.SetStrategy(d.mutant, mut)
			u.Mutated = true
			u.Mutant = d.mutant
			u.MutantStrategy = mut
		}
		u.MeanFitnessWanted = gen%cfg.SampleStride == 0

		// Broadcast the global strategy update (collective network).
		tb = pt.begin()
		if _, err := c.Bcast(0, u); err != nil {
			return err
		}
		pt.end(PhaseBroadcast, tb)

		if u.MeanFitnessWanted {
			// Join the workers' payoff reduction; Nature contributes 0.
			tr := pt.begin()
			total, err := c.Reduce(0, 0, mpi.OpSum)
			if err != nil {
				return err
			}
			pt.end(PhaseReduce, tr)
			res.MeanFitness.Observe(gen, total/float64(s*(s-1)))
			res.Cooperation.Observe(gen, pop.MeanCooperationProb())
		}
		if cfg.Observer != nil {
			cfg.Observer.Generation(gen, pop, ev)
		}
		// Checkpoint on absolute generation numbers, so a resumed run keeps
		// the original cadence instead of one phase-shifted by the restart.
		if cfg.CheckpointEvery > 0 && (gen+1)%cfg.CheckpointEvery == 0 {
			tc := pt.begin()
			if err := saveSnapshot(&cfg, pop, gen+1, res.Counters, res.MeanFitness, res.Cooperation); err != nil {
				return err
			}
			pt.end(PhaseCheckpoint, tc)
			logEvent(trace.Event{Kind: trace.EventCheckpoint, Generation: gen + 1, Rank: 0})
		}
		return nil
	}

	finalize := func(c *mpi.Comm) error {
		// A resume directly into finalization replays the last generation's
		// games wholesale; account for them in the cross-check (the restored
		// GamesPlayed already covers the run's schedule).
		if pendingFull {
			crossCheck += uint64(s) * uint64(s-1)
			pendingFull = false
		}
		// Collect the final payoff blocks and compute all fitness values in
		// the sequential engine's order.
		nWorkers := c.Size() - 1
		flat := make([]float64, s*(s-1))
		tf := pt.begin()
		for w := 0; w < nWorkers; w++ {
			msg, err := c.Recv(1+w, tagRows)
			if err != nil {
				return err
			}
			lo, _ := blockRange(s*(s-1), nWorkers, w)
			copy(flat[lo:], msg.Payload.([]float64))
		}
		pt.end(PhaseFitnessComm, tf)
		fitness := make([]float64, s)
		for i := 0; i < s; i++ {
			total := 0.0
			for k := i * (s - 1); k < (i+1)*(s-1); k++ {
				total += flat[k]
			}
			fitness[i] = total / float64(s-1)
		}
		// The workers' reduced game count cross-checks Nature's scheduled
		// tally: both sides evaluate the same refresh predicate over the
		// same window, so any divergence means the global views drifted.
		tr := pt.begin()
		games, err := c.Reduce(0, 0, mpi.OpSum)
		if err != nil {
			return err
		}
		pt.end(PhaseReduce, tr)
		if uint64(games) != crossCheck {
			return fmt.Errorf("sim: workers played %d games since the last synchronisation, Nature scheduled %d — global views diverged",
				uint64(games), crossCheck)
		}
		// Collect every rank's phase timings. Gated on Metrics so the
		// collective-operation counters existing fault scripts key on are
		// unchanged when observability is off; symmetric with the workers'
		// finalize.
		if cfg.Metrics {
			snapsAny, err := c.Gather(0, pt.snapshot(c.OrigRank()))
			if err != nil {
				return err
			}
			rm := &RunMetrics{}
			for _, a := range snapsAny {
				rm.Phases = append(rm.Phases, a.(RankPhaseSnapshot))
			}
			sort.Slice(rm.Phases, func(i, j int) bool { return rm.Phases[i].Rank < rm.Phases[j].Rank })
			res.Metrics = rm
		}
		// In eviction mode a final barrier keeps workers resident until
		// Nature has everything, so a late failure still finds every
		// survivor able to agree. Gated on Evict: an unconditional barrier
		// would shift the operation counters existing fault scripts key on.
		if cfg.Evict {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		res.FinalFitness = fitness
		return nil
	}

	// recoverLive runs the survivor-side eviction protocol: agree on the
	// surviving set, shrink onto it, roll back to the snapshot, and
	// rebroadcast the authoritative state. Each loop iteration is one
	// agreement epoch; a failure landing mid-recovery starts another.
	recoverLive := func(c *mpi.Comm, cause error) (*mpi.Comm, error) {
		if !cfg.Evict {
			return nil, cause
		}
		cur := cause
		for {
			if !evictable(cur) {
				return nil, cause
			}
			surv, err := c.Agree()
			if err != nil {
				return nil, cause
			}
			evs := c.Evictions()
			for _, e := range evs[seenEvictions:] {
				logEvent(trace.Event{Kind: trace.EventEviction, Generation: snap.gen, Rank: e.Rank,
					Detail: e.Err.Error()})
			}
			seenEvictions = len(evs)
			if len(surv) < minRanksFloor(&cfg) {
				logEvent(trace.Event{Kind: trace.EventEvictionFailed, Generation: snap.gen, Rank: -1,
					Detail: fmt.Sprintf("%d survivors below floor %d; falling back to checkpoint restart",
						len(surv), minRanksFloor(&cfg))})
				return nil, cause
			}
			nc, err := c.Shrink(surv)
			if err != nil {
				cur = err
				continue
			}
			restore()
			pendingFull = true
			crossCheck = 0
			rs := resume{
				Gen:        snap.gen,
				Replay:     min(snap.gen, end-1),
				Strategies: append([]strategy.Strategy(nil), snap.strategies...),
			}
			if _, err := nc.Bcast(0, rs); err != nil {
				c, cur = nc, err
				continue
			}
			return nc, nil
		}
	}

	for gen < end {
		// Control poll at the generation boundary: a stop is announced via a
		// Stop selection broadcast (the workers' next rendezvous — they are
		// already playing this generation's games) before Nature persists the
		// resume snapshot and exits. The partial Result rides along with
		// ErrStopped so the caller keeps the series sampled before the cut.
		if cfg.Control != nil {
			if cause := cfg.Control(gen); cause != nil {
				if _, err := c.Bcast(0, selection{Stop: true}); err != nil {
					return nil, err
				}
				return res, stopRun(&cfg, pop, gen, res.Counters, res.MeanFitness, res.Cooperation, cause)
			}
		}
		if cfg.Evict {
			takeSnap()
		}
		err := oneGeneration(c)
		if err == nil {
			gen++
			continue
		}
		nc, rerr := recoverLive(c, err)
		if rerr != nil {
			return nil, rerr
		}
		c = nc
	}
	if cfg.Evict {
		takeSnap() // snap.gen == end: the finalization resume point
	}
	for {
		err := finalize(c)
		if err == nil {
			break
		}
		nc, rerr := recoverLive(c, err)
		if rerr != nil {
			return nil, rerr
		}
		c = nc
	}
	res.Final = pop.Snapshot()
	return res, nil
}

// workerRank is ranks 1..P-1: it owns a contiguous block of game pairs,
// keeps the same global strategy view as Nature, plays its matches locally,
// and applies broadcast updates.
//
// With cfg.Evict, a rank failure drops the worker into the survivor-side
// eviction protocol: agree, shrink, then adopt Nature's resume broadcast
// wholesale — new dense rank, re-sharded pair block, authoritative strategy
// view — and replay every owned pair from the interrupted generation's
// random streams. If Nature itself is among the dead, live eviction cannot
// continue (no one can re-drive the schedule) and the worker returns the
// failure so the restart supervisor takes over.
func workerRank(cfg Config, c *mpi.Comm) error {
	master := rng.New(cfg.Seed)
	pop := NewPopulation(cfg, master) // same deterministic initialisation
	s := cfg.NumSSets
	end := cfg.StartGeneration + cfg.Generations
	kern := newPayoffKernel(&cfg)

	w := c.Rank() - 1
	lo, hi := blockRange(s*(s-1), c.Size()-1, w)
	// payoffs[k-lo] is pair k's mean per-round payoff for its row SSet.
	payoffs := make([]float64, hi-lo)
	games := uint64(0)
	gen := cfg.StartGeneration
	// pendingFull marks that an eviction re-sharded this worker's block:
	// the next pass replays every owned pair from replayGen's streams.
	pendingFull := false
	replayGen := 0
	var pt *phaseTimer
	if cfg.Metrics {
		pt = newPhaseTimer()
	}

	// refresh replays the owned pairs whose participants changed. A
	// pairPayoff failure (exact-mode analysis error) aborts the pass: it is
	// a configuration fault, not a rank failure, so it propagates out of the
	// run instead of triggering eviction. games counts every owned pair the
	// schedule touched, cache hits included — Nature's cross-check tallies
	// scheduled games, and a memo hit still delivers a scheduled payoff.
	refresh := func(g int) error {
		kern.prepare(&cfg, pop)
		for k := lo; k < hi; k++ {
			i, j := pairToIJ(s, k)
			if cfg.FullRecompute || pop.dirty[i] || pop.dirty[j] {
				v, err := kern.pairPayoff(&cfg, master, g, i, j, pop.strategies[i], pop.strategies[j])
				if err != nil {
					return err
				}
				payoffs[k-lo] = v
				games++
			}
		}
		return nil
	}
	// replayAll recomputes the whole owned block from generation g's
	// streams, regardless of dirtiness — the post-eviction rebuild.
	replayAll := func(g int) error {
		kern.prepare(&cfg, pop)
		for k := lo; k < hi; k++ {
			i, j := pairToIJ(s, k)
			v, err := kern.pairPayoff(&cfg, master, g, i, j, pop.strategies[i], pop.strategies[j])
			if err != nil {
				return err
			}
			payoffs[k-lo] = v
			games++
		}
		return nil
	}
	// segment extracts the owned, contiguous payoff slice of SSet i's row
	// (nil when this worker owns none of it).
	segment := func(i int) []float64 {
		rowLo, rowHi := i*(s-1), (i+1)*(s-1)
		segLo, segHi := max(lo, rowLo), min(hi, rowHi)
		if segLo >= segHi {
			return nil
		}
		out := make([]float64, segHi-segLo)
		copy(out, payoffs[segLo-lo:segHi-lo])
		return out
	}

	oneGeneration := func(c *mpi.Comm) error {
		// Game dynamics: replay this worker's pairs.
		tg := pt.begin()
		if pendingFull {
			pendingFull = false
			if err := replayAll(replayGen); err != nil {
				return err
			}
		} else if err := refresh(gen); err != nil {
			return err
		}
		pt.end(PhaseGamePlay, tg)
		pop.clearDirty()

		// Receive the PC selection.
		tb := pt.begin()
		selAny, err := c.Bcast(0, nil)
		if err != nil {
			return err
		}
		pt.end(PhaseBroadcast, tb)
		sel := selAny.(selection)
		if sel.Stop {
			// Nature's control hook stopped the run; the outer loop turns
			// this into a clean worker exit.
			return fmt.Errorf("sim: worker %d: %w", c.Rank(), ErrStopped)
		}
		if sel.PC {
			// Owners of the selected rows return their segments; teacher
			// before learner so Nature's ordered receives match when one
			// worker owns pieces of both.
			tf := pt.begin()
			if seg := segment(sel.Teacher); seg != nil {
				if err := c.Send(0, tagFitness, seg); err != nil {
					return err
				}
			}
			if seg := segment(sel.Learner); seg != nil {
				if err := c.Send(0, tagFitness, seg); err != nil {
					return err
				}
			}
			pt.end(PhaseFitnessComm, tf)
		}

		// Apply the global strategy update.
		tb = pt.begin()
		uAny, err := c.Bcast(0, nil)
		if err != nil {
			return err
		}
		pt.end(PhaseBroadcast, tb)
		u := uAny.(update)
		if u.Adopted {
			pop.Adopt(u.Learner, u.Teacher)
		}
		if u.Mutated {
			pop.SetStrategy(u.Mutant, u.MutantStrategy.Clone())
		}
		if u.MeanFitnessWanted {
			partial := 0.0
			for _, v := range payoffs {
				partial += v
			}
			tr := pt.begin()
			if _, err := c.Reduce(0, partial, mpi.OpSum); err != nil {
				return err
			}
			pt.end(PhaseReduce, tr)
		}
		return nil
	}

	finalize := func(c *mpi.Comm) error {
		// A resume directly into finalization still rebuilds the re-sharded
		// block before shipping it.
		if pendingFull {
			tg := pt.begin()
			pendingFull = false
			if err := replayAll(replayGen); err != nil {
				return err
			}
			pt.end(PhaseGamePlay, tg)
		}
		// Ship the final payoff block and the game counter to Nature.
		final := make([]float64, len(payoffs))
		copy(final, payoffs)
		tf := pt.begin()
		if err := c.Send(0, tagRows, final); err != nil {
			return err
		}
		pt.end(PhaseFitnessComm, tf)
		tr := pt.begin()
		if _, err := c.Reduce(0, float64(games), mpi.OpSum); err != nil {
			return err
		}
		pt.end(PhaseReduce, tr)
		// Ship the phase timings (plus this rank's cache counters when
		// caching is on); mirrors Nature's metrics Gather.
		if cfg.Metrics {
			snap := pt.snapshot(c.OrigRank())
			snap.Cache = kern.cacheStats()
			if _, err := c.Gather(0, snap); err != nil {
				return err
			}
		}
		// Mirror Nature's eviction-mode barrier: stay resident until every
		// rank is done, so a late failure still finds a full survivor set.
		if cfg.Evict {
			return c.Barrier()
		}
		return nil
	}

	// recoverLive is the worker side of the eviction protocol; it mirrors
	// Nature's agreement epochs exactly — one Agree per entry, another per
	// failed Shrink or resume broadcast — which is what keeps the rendezvous
	// aligned across divergent failure interleavings.
	recoverLive := func(c *mpi.Comm, cause error) (*mpi.Comm, error) {
		if !cfg.Evict {
			return nil, cause
		}
		cur := cause
		for {
			if !evictable(cur) {
				return nil, cause
			}
			surv, err := c.Agree()
			if err != nil {
				return nil, cause
			}
			if len(surv) == 0 || surv[0] != 0 {
				// Nature itself died: fall back to checkpoint restart. The
				// lowest survivor records the decision once for the trace.
				if len(surv) > 0 && c.OrigRank() == surv[0] && cfg.EventLog != nil {
					cfg.EventLog.Append(trace.Event{Kind: trace.EventEvictionFailed, Generation: gen, Rank: 0,
						Detail: "nature rank failed; falling back to checkpoint restart"})
				}
				return nil, cause
			}
			if len(surv) < minRanksFloor(&cfg) {
				return nil, cause
			}
			nc, err := c.Shrink(surv)
			if err != nil {
				cur = err
				continue
			}
			rsAny, err := nc.Bcast(0, nil)
			if err != nil {
				c, cur = nc, err
				continue
			}
			rs := rsAny.(resume)
			// Adopt the authoritative state wholesale: the worker may be a
			// generation ahead of or behind Nature (a dead mid-tree rank can
			// break a broadcast relay part-way), so local state is untrusted.
			for i, st := range rs.Strategies {
				pop.strategies[i] = st.Clone()
			}
			pop.clearDirty()
			gen = rs.Gen
			replayGen = rs.Replay
			pendingFull = true
			w = nc.Rank() - 1
			lo, hi = blockRange(s*(s-1), nc.Size()-1, w)
			payoffs = make([]float64, hi-lo)
			games = 0
			return nc, nil
		}
	}

	for gen < end {
		err := oneGeneration(c)
		if err == nil {
			gen++
			continue
		}
		if errors.Is(err, ErrStopped) {
			// Control stop announced by Nature: exit cleanly so the run's
			// only error is Nature's, carrying the snapshot outcome.
			return nil
		}
		nc, rerr := recoverLive(c, err)
		if rerr != nil {
			return rerr
		}
		c = nc
	}
	for {
		err := finalize(c)
		if err == nil {
			return nil
		}
		nc, rerr := recoverLive(c, err)
		if rerr != nil {
			return rerr
		}
		c = nc
	}
}
