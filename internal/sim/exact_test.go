package sim

import (
	"math"
	"testing"
)

func TestExactModeValidation(t *testing.T) {
	cfg := testConfig(1, 4, 5)
	cfg.ExactPayoffs = true
	cfg.UseSearchEngine = true
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("exact + search accepted")
	}
}

func TestExactModeRuns(t *testing.T) {
	cfg := testConfig(1, 8, 60)
	cfg.ExactPayoffs = true
	cfg.Kind = MixedStrategies
	cfg.Rules.ErrorRate = 0.01
	cfg.Seed = 31
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.FinalFitness {
		if f < 0 || f > 4 {
			t.Fatalf("fitness %d = %v", i, f)
		}
	}
	if res.Counters.GamesPlayed == 0 {
		t.Fatal("no evaluations counted")
	}
}

func TestExactModeParallelParity(t *testing.T) {
	cfg := testConfig(1, 9, 40)
	cfg.ExactPayoffs = true
	cfg.Kind = MixedStrategies
	cfg.Rules.ErrorRate = 0.02
	cfg.Seed = 32
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, seq, par)
}

func TestExactModeAgreesWithLongSampledGames(t *testing.T) {
	// With pure strategies and no errors, exact payoffs equal the cycle
	// average; sampled 200-round games may differ only by the transient.
	// Compare initial fitness landscapes: the two modes must rank SSets
	// nearly identically at generation zero.
	mk := func(exact bool, rounds int) []float64 {
		cfg := testConfig(1, 10, 1)
		cfg.Seed = 33
		cfg.PCRate = 0
		cfg.Mu = 0
		cfg.ExactPayoffs = exact
		cfg.Rules.Rounds = rounds
		res, err := RunSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalFitness
	}
	exact := mk(true, 200)
	sampled := mk(false, 5000) // long matches shrink the transient's weight
	for i := range exact {
		if math.Abs(exact[i]-sampled[i]) > 0.05 {
			t.Fatalf("SSet %d: exact %v vs long-sampled %v", i, exact[i], sampled[i])
		}
	}
}

func TestExactModeDeterministicAcrossModes(t *testing.T) {
	// Exact payoffs remove all game randomness, so incremental and full
	// recompute give identical trajectories even for mixed strategies with
	// errors (the caching substitution's noise source is gone).
	base := testConfig(1, 8, 80)
	base.Seed = 34
	base.Kind = MixedStrategies
	base.Rules.ErrorRate = 0.01
	base.ExactPayoffs = true

	inc := base
	full := base
	full.FullRecompute = true
	a, err := RunSequential(inc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Final {
		if !a.Final[i].Equal(b.Final[i]) {
			t.Fatalf("strategy %d differs between evaluation modes", i)
		}
	}
	if a.Counters.Adoptions != b.Counters.Adoptions {
		t.Fatal("adoption counts differ between evaluation modes")
	}
}
