package sim

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/strategy"
)

func sinkSnapshot(gen uint64) *checkpoint.Snapshot {
	sp := strategy.NewSpace(1)
	return &checkpoint.Snapshot{
		Generation: gen, Seed: 42, Memory: 1,
		Strategies: []strategy.Strategy{strategy.AllC(sp), strategy.AllD(sp)},
		Counters:   &checkpoint.RunCounters{GamesPlayed: gen * 2},
	}
}

func TestMemorySinkLatestWins(t *testing.T) {
	sink := NewMemorySink()
	if snap, err := sink.Latest(); err != nil || snap != nil {
		t.Fatalf("empty sink Latest = %v, %v; want nil, nil", snap, err)
	}
	if err := sink.Save(sinkSnapshot(10)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Save(sinkSnapshot(20)); err != nil {
		t.Fatal(err)
	}
	if sink.Saves() != 2 {
		t.Fatalf("saves = %d, want 2", sink.Saves())
	}
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 20 || snap.Counters == nil || snap.Counters.GamesPlayed != 40 {
		t.Fatalf("latest snapshot: %+v", snap)
	}
}

func TestMemorySinkDoesNotAliasLiveState(t *testing.T) {
	// The sink round-trips through the codec, so mutating the saved
	// snapshot's strategies afterwards must not affect what Latest returns.
	sink := NewMemorySink()
	s := sinkSnapshot(5)
	if err := sink.Save(s); err != nil {
		t.Fatal(err)
	}
	sp := strategy.NewSpace(1)
	s.Strategies[0] = strategy.AllD(sp)
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Strategies[0].Equal(strategy.AllC(sp)) {
		t.Fatal("sink aliased the caller's snapshot")
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sink := &FileSink{Path: path}
	if snap, err := sink.Latest(); err != nil || snap != nil {
		t.Fatalf("missing file Latest = %v, %v; want nil, nil", snap, err)
	}
	if err := sink.Save(sinkSnapshot(100)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Save(sinkSnapshot(200)); err != nil {
		t.Fatal(err)
	}
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 200 {
		t.Fatalf("latest generation = %d, want 200", snap.Generation)
	}
	// The atomic write must leave no temp files behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want 1", len(entries))
	}
}

func TestFileSinkTornWriteKeepsPreviousCheckpoint(t *testing.T) {
	// A write that fails part-way (disk full, crash) must never replace the
	// previous good checkpoint, and must clean up its temp file.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sink := &FileSink{Path: path}
	if err := sink.Save(sinkSnapshot(100)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("torn write: device full")
	sink.writeFn = func(w io.Writer, s *checkpoint.Snapshot) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return boom
	}
	if err := sink.Save(sinkSnapshot(200)); !errors.Is(err, boom) {
		t.Fatalf("torn Save error = %v, want %v", err, boom)
	}
	sink.writeFn = nil
	snap, err := sink.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Generation != 100 {
		t.Fatalf("after torn write Latest = %+v, want the generation-100 snapshot", snap)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("torn write littered the checkpoint dir: %d entries", len(entries))
	}
}
