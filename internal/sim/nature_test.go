package sim

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/strategy"
)

func TestNatureDecisionDeterministic(t *testing.T) {
	cfg := testConfig(1, 16, 0)
	_ = cfg.Validate()
	m1 := rng.New(5)
	m2 := rng.New(5)
	for gen := 0; gen < 200; gen++ {
		a := natureDecision(&cfg, m1, gen)
		b := natureDecision(&cfg, m2, gen)
		if a != b {
			t.Fatalf("gen %d: decisions differ: %+v vs %+v", gen, a, b)
		}
	}
}

func TestNatureDecisionIndependentOfCallOrder(t *testing.T) {
	// Decisions are keyed by absolute generation: querying gen 50 before
	// gen 10 must not change either.
	cfg := testConfig(1, 16, 0)
	_ = cfg.Validate()
	m := rng.New(6)
	d50 := natureDecision(&cfg, m, 50)
	d10 := natureDecision(&cfg, m, 10)
	m2 := rng.New(6)
	if natureDecision(&cfg, m2, 10) != d10 {
		t.Fatal("gen-10 decision depends on call order")
	}
	if natureDecision(&cfg, m2, 50) != d50 {
		t.Fatal("gen-50 decision depends on call order")
	}
}

func TestNatureDecisionRates(t *testing.T) {
	cfg := testConfig(1, 16, 0)
	cfg.PCRate = 0.25
	cfg.Mu = 0.10
	_ = cfg.Validate()
	m := rng.New(7)
	const gens = 40000
	pc, mut := 0, 0
	for gen := 0; gen < gens; gen++ {
		d := natureDecision(&cfg, m, gen)
		if d.pc {
			pc++
			if d.teacher == d.learner {
				t.Fatal("teacher == learner")
			}
			if d.teacher < 0 || d.teacher >= 16 || d.learner < 0 || d.learner >= 16 {
				t.Fatal("selection out of range")
			}
		}
		if d.mutate {
			mut++
			if d.mutant < 0 || d.mutant >= 16 {
				t.Fatal("mutant out of range")
			}
		}
	}
	if math.Abs(float64(pc)/gens-0.25) > 0.01 {
		t.Errorf("PC rate %v, want 0.25", float64(pc)/gens)
	}
	if math.Abs(float64(mut)/gens-0.10) > 0.01 {
		t.Errorf("mutation rate %v, want 0.10", float64(mut)/gens)
	}
}

func TestNatureDecisionZeroRates(t *testing.T) {
	cfg := testConfig(1, 8, 0)
	cfg.PCRate = 0
	cfg.Mu = 0
	_ = cfg.Validate()
	m := rng.New(8)
	for gen := 0; gen < 1000; gen++ {
		d := natureDecision(&cfg, m, gen)
		if d.pc || d.mutate {
			t.Fatal("events at zero rates")
		}
	}
}

func TestResolveAdoptionGate(t *testing.T) {
	cfg := testConfig(1, 8, 0)
	cfg.Beta = 5
	_ = cfg.Validate()
	m := rng.New(9)
	// Paper gate: teacher not strictly better -> never adopt.
	for gen := 0; gen < 500; gen++ {
		if resolveAdoption(&cfg, m, gen, 1.0, 1.0) {
			t.Fatal("adopted with equal payoffs under the gate")
		}
		if resolveAdoption(&cfg, m, gen, 0.5, 2.0) {
			t.Fatal("adopted a worse teacher under the gate")
		}
	}
	// Teacher much better: adoption rate near Fermi(beta*delta) ~ 1.
	adopted := 0
	for gen := 0; gen < 2000; gen++ {
		if resolveAdoption(&cfg, m, gen, 3.0, 1.0) {
			adopted++
		}
	}
	if rate := float64(adopted) / 2000; rate < 0.98 {
		t.Fatalf("strongly better teacher adopted at rate %v", rate)
	}
}

func TestResolveAdoptionUnconditionalFermi(t *testing.T) {
	cfg := testConfig(1, 8, 0)
	cfg.Beta = 1
	cfg.AllowWorseAdoption = true
	_ = cfg.Validate()
	m := rng.New(10)
	// Equal payoffs: adoption rate ~ 1/2 (neutral drift).
	adopted := 0
	const trials = 20000
	for gen := 0; gen < trials; gen++ {
		if resolveAdoption(&cfg, m, gen, 1.0, 1.0) {
			adopted++
		}
	}
	if rate := float64(adopted) / trials; math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("neutral adoption rate %v, want ~0.5", rate)
	}
	// Worse teacher: rate ~ Fermi(-1) = 0.269.
	adopted = 0
	for gen := 0; gen < trials; gen++ {
		if resolveAdoption(&cfg, m, gen, 0.0, 1.0) {
			adopted++
		}
	}
	want := Fermi(1, 0, 1)
	if rate := float64(adopted) / trials; math.Abs(rate-want) > 0.02 {
		t.Fatalf("worse-teacher adoption rate %v, want ~%v", rate, want)
	}
}

func TestMutantStrategyDeterministicPerGeneration(t *testing.T) {
	cfg := testConfig(1, 8, 0)
	_ = cfg.Validate()
	sp := strategy.NewSpace(1)
	a := mutantStrategy(&cfg, rng.New(11), sp, 42)
	b := mutantStrategy(&cfg, rng.New(11), sp, 42)
	if !a.Equal(b) {
		t.Fatal("mutant differs for identical (seed, generation)")
	}
	c := mutantStrategy(&cfg, rng.New(11), sp, 43)
	if a.Equal(c) {
		t.Fatal("mutants identical across generations")
	}
}

func TestMutantStrategyKind(t *testing.T) {
	cfg := testConfig(1, 8, 0)
	_ = cfg.Validate()
	sp := strategy.NewSpace(1)
	if _, ok := mutantStrategy(&cfg, rng.New(1), sp, 0).(*strategy.Pure); !ok {
		t.Fatal("pure config produced non-pure mutant")
	}
	cfg.Kind = MixedStrategies
	if _, ok := mutantStrategy(&cfg, rng.New(1), sp, 0).(*strategy.Mixed); !ok {
		t.Fatal("mixed config produced non-mixed mutant")
	}
}
