package sim

import (
	"time"

	"repro/internal/stats"
	"repro/internal/strategy"
)

// Counters tallies the work a run performed.
type Counters struct {
	GamesPlayed uint64 // two-player IPD matches executed
	PCEvents    uint64 // pairwise-comparison events fired
	Adoptions   uint64 // PC events in which the learner adopted
	Mutations   uint64 // mutation events fired
}

// Result is the outcome of a simulation run.
type Result struct {
	// Final holds deep copies of every SSet's final strategy.
	Final []strategy.Strategy
	// FinalFitness holds every SSet's final relative fitness.
	FinalFitness []float64
	// MeanFitness samples the population mean fitness over generations
	// (per-round payoff scale: 1 = all-defect, 3 = full cooperation).
	MeanFitness *stats.Series
	// Cooperation samples the population mean cooperation probability.
	Cooperation *stats.Series
	// Counters tallies games and evolution events.
	Counters Counters
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Ranks is the number of ranks still in the world when the run finished
	// (1 for sequential; start count minus live evictions for parallel).
	Ranks int
	// Restarts is how many times the recovery supervisor restarted the run
	// (0 for a direct or fault-free run).
	Restarts int
	// Evictions is how many ranks were evicted live — failed and recovered
	// from in flight, without a restart (Config.Evict).
	Evictions int
	// Metrics holds the run's observability aggregate (per-rank phase
	// timings, and comm accounting for the parallel engine); nil unless
	// Config.Metrics was set.
	Metrics *RunMetrics
}

// FinalAbundance tallies the final population's strategy abundance.
func (r *Result) FinalAbundance() *stats.Abundance {
	a := stats.NewAbundance()
	for _, s := range r.Final {
		a.Add(s.Fingerprint())
	}
	return a
}

// FractionNear returns the share of final SSets whose strategy rounds to
// the pure strategy ref (Fig. 2's "85% of all SSets adopted WSLS" measure).
func (r *Result) FractionNear(ref *strategy.Pure) float64 {
	n := 0
	for _, s := range r.Final {
		switch v := s.(type) {
		case *strategy.Pure:
			if v.Equal(ref) {
				n++
			}
		case *strategy.Mixed:
			if v.NearestPure().Equal(ref) {
				n++
			}
		}
	}
	if len(r.Final) == 0 {
		return 0
	}
	return float64(n) / float64(len(r.Final))
}
