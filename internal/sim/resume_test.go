package sim

import (
	"testing"

	"repro/internal/strategy"
)

// Resume semantics: a run of G generations must equal a run of the first
// half followed by a run of the second half seeded with the first half's
// final strategies and StartGeneration at the cut. Exact for pure
// strategies without execution errors, whose match outcomes are
// deterministic.

func TestResumeEquivalencePureStrategies(t *testing.T) {
	cfg := testConfig(1, 10, 100)
	cfg.Seed = 77

	full, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}

	first := cfg
	first.Generations = 60
	half, err := RunSequential(first)
	if err != nil {
		t.Fatal(err)
	}

	second := cfg
	second.Generations = 40
	second.StartGeneration = 60
	second.InitialStrategies = half.Final
	resumed, err := RunSequential(second)
	if err != nil {
		t.Fatal(err)
	}

	for i := range full.Final {
		if !full.Final[i].Equal(resumed.Final[i]) {
			t.Fatalf("final strategy %d differs after resume", i)
		}
	}
	// Event counters across the halves must sum to the full run's.
	if half.Counters.PCEvents+resumed.Counters.PCEvents != full.Counters.PCEvents {
		t.Fatalf("PC events %d+%d != %d", half.Counters.PCEvents, resumed.Counters.PCEvents, full.Counters.PCEvents)
	}
	if half.Counters.Mutations+resumed.Counters.Mutations != full.Counters.Mutations {
		t.Fatal("mutation counts do not sum")
	}
	if half.Counters.Adoptions+resumed.Counters.Adoptions != full.Counters.Adoptions {
		t.Fatal("adoption counts do not sum")
	}
}

func TestResumeEquivalenceParallel(t *testing.T) {
	cfg := testConfig(2, 8, 50)
	cfg.Seed = 78

	full, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := cfg
	first.Generations = 25
	half, err := RunParallel(first, 3)
	if err != nil {
		t.Fatal(err)
	}
	second := cfg
	second.Generations = 25
	second.StartGeneration = 25
	second.InitialStrategies = half.Final
	resumed, err := RunParallel(second, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Final {
		if !full.Final[i].Equal(resumed.Final[i]) {
			t.Fatalf("final strategy %d differs after parallel resume", i)
		}
	}
	for i := range full.FinalFitness {
		if full.FinalFitness[i] != resumed.FinalFitness[i] {
			t.Fatalf("final fitness %d differs after parallel resume", i)
		}
	}
}

func TestInitialStrategiesNotAliased(t *testing.T) {
	cfg := testConfig(1, 4, 5)
	sp := strategy.NewSpace(1)
	seeds := []strategy.Strategy{
		strategy.AllC(sp), strategy.AllD(sp), strategy.TFT(sp), strategy.WSLS(sp),
	}
	cfg.InitialStrategies = seeds
	cfg.Mu = 1.0 // force churn
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	// The caller's seed strategies must be untouched.
	if !seeds[0].Equal(strategy.AllC(sp)) || !seeds[3].Equal(strategy.WSLS(sp)) {
		t.Fatal("run mutated the caller's initial strategies")
	}
}

func TestInitialStrategiesSeedPopulation(t *testing.T) {
	cfg := testConfig(1, 3, 0)
	sp := strategy.NewSpace(1)
	cfg.InitialStrategies = []strategy.Strategy{
		strategy.AllC(sp), strategy.WSLS(sp), strategy.AllD(sp),
	}
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final[0].Equal(strategy.AllC(sp)) ||
		!res.Final[1].Equal(strategy.WSLS(sp)) ||
		!res.Final[2].Equal(strategy.AllD(sp)) {
		t.Fatal("initial strategies not used")
	}
}

func TestResumeValidation(t *testing.T) {
	cfg := testConfig(1, 4, 5)
	cfg.StartGeneration = -1
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("negative start generation accepted")
	}
	cfg = testConfig(1, 4, 5)
	cfg.InitialStrategies = []strategy.Strategy{strategy.AllC(strategy.NewSpace(1))}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("wrong-length initial strategies accepted")
	}
	cfg = testConfig(1, 2, 5)
	cfg.InitialStrategies = []strategy.Strategy{
		strategy.AllC(strategy.NewSpace(2)), strategy.AllD(strategy.NewSpace(2)),
	}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("wrong-space initial strategies accepted")
	}
	cfg = testConfig(1, 2, 5)
	cfg.InitialStrategies = []strategy.Strategy{nil, strategy.AllD(strategy.NewSpace(1))}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("nil initial strategy accepted")
	}
}

func TestStartGenerationShiftsSchedule(t *testing.T) {
	// The same window of absolute generations must produce the same events
	// regardless of whether earlier generations were actually run, because
	// the Nature schedule is keyed by absolute generation.
	cfg := testConfig(1, 6, 30)
	cfg.Seed = 79
	cfg.StartGeneration = 100
	a, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Fatal("shifted schedule not deterministic")
	}
	// And it must differ from the unshifted schedule (different gens).
	cfg.StartGeneration = 0
	c, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters == c.Counters {
		// Could coincide by chance; also compare strategies.
		same := true
		for i := range a.Final {
			if !a.Final[i].Equal(c.Final[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("start generation had no effect on the schedule")
		}
	}
}
