package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// RestartPolicy governs how RunParallelResilient reacts to rank failures.
// The zero value restarts up to 3 times with no backoff and no degradation.
type RestartPolicy struct {
	// MaxRestarts is the number of restarts attempted before giving up
	// (0 selects the default of 3; negative disables restarts entirely).
	MaxRestarts int
	// Backoff is the delay before the first restart; it doubles on each
	// subsequent restart. Zero restarts immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubling (0 means uncapped).
	MaxBackoff time.Duration
	// Degrade, when true, drops the failed worker on each restart: the run
	// continues on one fewer rank. Correctness is unaffected — the engine's
	// trajectory is identical at any rank count — only the work split
	// changes.
	Degrade bool
	// MinRanks is the smallest world Degrade may shrink to (values < 2 mean
	// 2, the engine's floor of Nature plus one worker).
	MinRanks int
}

func (p RestartPolicy) maxRestarts() int {
	if p.MaxRestarts == 0 {
		return 3
	}
	return max(p.MaxRestarts, 0)
}

func (p RestartPolicy) minRanks() int { return max(p.MinRanks, 2) }

func (p RestartPolicy) backoff(attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	b := p.Backoff << uint(attempt)
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// RunParallelResilient is the fault-tolerant front end to RunParallel: it
// supervises the run, and when a rank fails (an injected fault, a panic, or
// a receive deadline firing on a stalled worker) it restores the latest
// checkpoint and re-runs the remaining generations, up to policy.MaxRestarts
// times. Because every per-generation random stream is keyed by the absolute
// generation, the recovered trajectory is the uninterrupted one: final
// strategies and fitness are bit-identical to a fault-free run (and with
// FullRecompute the counters match exactly too; incremental runs replay one
// generation's games at each resume, which only inflates GamesPlayed).
//
// Recovery is evict-first, restart-second: with cfg.Evict, worker failures
// are recovered live inside RunParallel (heartbeat detection, communicator
// shrink, one-generation replay — see par.go) and never reach this
// supervisor. Only failures live eviction cannot absorb — the Nature rank
// dying, or survivors dropping below cfg.MinRanks — surface here and take
// the checkpoint-restart path.
//
// When cfg.CheckpointEvery > 0 and no sink is configured, an in-memory sink
// is installed automatically. With checkpointing disabled, recovery restarts
// from the beginning — correct, but all progress is lost. With
// policy.Degrade, each restart drops the failed worker's rank from the world
// (never below policy.MinRanks); the trajectory is rank-count-invariant, so
// results are unchanged.
//
// The returned Result reports cumulative counters for the whole logical run;
// its sampled series (MeanFitness, Cooperation) cover only the generations
// since the last restart. Restarts records how many recoveries occurred.
func RunParallelResilient(cfg Config, ranks int, policy RestartPolicy) (*Result, error) {
	if cfg.CheckpointEvery > 0 && cfg.CheckpointSink == nil {
		cfg.CheckpointSink = NewMemorySink()
	}
	// Validate up front (normalising SampleStride against the full window,
	// so resumed segments sample on the original schedule); any later
	// failure is then a runtime fault and retryable.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranks < 2 {
		return nil, fmt.Errorf("sim: parallel engine needs >= 2 ranks (Nature + workers), got %d", ranks)
	}
	if ranks-1 > cfg.NumSSets*(cfg.NumSSets-1) {
		return nil, fmt.Errorf("sim: %d workers exceed %d games per generation",
			ranks-1, cfg.NumSSets*(cfg.NumSSets-1))
	}

	logEvent := func(e trace.Event) {
		if cfg.EventLog != nil {
			cfg.EventLog.Append(e)
		}
	}

	cur := cfg
	for attempt := 0; ; attempt++ {
		res, err := RunParallel(cur, ranks)
		if err == nil {
			res.Restarts = attempt
			return res, nil
		}
		// A control-hook stop is a requested outcome, not a fault: return it
		// unchanged (with the partial result) so the caller (a pausing job
		// service, say) sees ErrStopped instead of the supervisor re-running
		// the stopped work.
		if errors.Is(err, ErrStopped) {
			return res, err
		}

		failedRank := -1
		var rf *mpi.RankFailedError
		if errors.As(err, &rf) {
			failedRank = rf.Rank
		}
		logEvent(trace.Event{
			Kind: trace.EventFault, Generation: -1, Rank: failedRank,
			Attempt: attempt, Detail: err.Error(),
		})
		if attempt >= policy.maxRestarts() {
			logEvent(trace.Event{Kind: trace.EventGiveUp, Generation: -1, Rank: failedRank, Attempt: attempt})
			return nil, fmt.Errorf("sim: giving up after %d restarts: %w", attempt, err)
		}

		if policy.Degrade && failedRank > 0 && ranks > policy.minRanks() {
			ranks--
			logEvent(trace.Event{
				Kind: trace.EventDegrade, Generation: -1, Rank: failedRank, Attempt: attempt,
				Detail: fmt.Sprintf("continuing on %d ranks", ranks),
			})
		}

		restart, resumeGen, err := restartConfig(cfg, attempt)
		if err != nil {
			return nil, err
		}
		cur = restart
		logEvent(trace.Event{Kind: trace.EventRecovery, Generation: resumeGen, Rank: failedRank, Attempt: attempt + 1})

		if b := policy.backoff(attempt); b > 0 {
			time.Sleep(b)
		}
	}
}

// restartConfig builds the configuration for the next attempt: the original
// run resumed from the latest checkpoint, or from scratch when none exists.
// It returns the absolute generation the attempt starts from.
func restartConfig(cfg Config, attempt int) (Config, int, error) {
	cur := cfg
	if cfg.CheckpointSink == nil {
		return cur, cfg.StartGeneration, nil
	}
	snap, err := cfg.CheckpointSink.Latest()
	if err != nil {
		return cur, 0, fmt.Errorf("sim: restart %d: reading checkpoint: %w", attempt+1, err)
	}
	if snap == nil {
		return cur, cfg.StartGeneration, nil
	}
	// A snapshot from a different run would silently fork the trajectory;
	// fail fast instead.
	if snap.Seed != cfg.Seed || snap.Memory != cfg.Memory || len(snap.Strategies) != cfg.NumSSets {
		return cur, 0, fmt.Errorf("sim: restart %d: checkpoint (seed %d, memory %d, %d SSets) does not match run (seed %d, memory %d, %d SSets)",
			attempt+1, snap.Seed, snap.Memory, len(snap.Strategies), cfg.Seed, cfg.Memory, cfg.NumSSets)
	}
	end := cfg.StartGeneration + cfg.Generations
	resumeGen := int(snap.Generation)
	if resumeGen < cfg.StartGeneration || resumeGen > end {
		return cur, 0, fmt.Errorf("sim: restart %d: checkpoint generation %d outside run window [%d,%d]",
			attempt+1, resumeGen, cfg.StartGeneration, end)
	}
	cur.InitialStrategies = snap.Strategies
	cur.StartGeneration = resumeGen
	cur.Generations = end - resumeGen
	if snap.Counters != nil {
		cur.BaseCounters = runToCounters(snap.Counters)
	}
	return cur, resumeGen, nil
}
