package sim

// Property tests for the work decomposition. Live eviction re-shards the
// game-pair list over a shrunk worker set, so these invariants must hold
// not just for the launch count but for every worker count the world can
// shrink to (nWorkers-1, nWorkers-2, ...) — the loops below cover all of
// them exhaustively for a spread of population sizes.

import "testing"

// blockRange must partition [0, n) into nWorkers contiguous, ascending,
// non-overlapping blocks whose sizes differ by at most one.
func TestBlockRangePartitionProperties(t *testing.T) {
	for _, s := range []int{2, 3, 4, 5, 8, 13} {
		n := s * (s - 1)
		for nWorkers := 1; nWorkers <= n; nWorkers++ {
			prevHi := 0
			for w := 0; w < nWorkers; w++ {
				lo, hi := blockRange(n, nWorkers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: block %d starts at %d, want %d (gap or overlap)",
						n, nWorkers, w, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d: block %d inverted [%d,%d)", n, nWorkers, w, lo, hi)
				}
				if size := hi - lo; size != n/nWorkers && size != n/nWorkers+1 {
					t.Fatalf("n=%d workers=%d: block %d size %d, want %d or %d (imbalanced)",
						n, nWorkers, w, size, n/nWorkers, n/nWorkers+1)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: blocks cover [0,%d), want [0,%d)", n, nWorkers, prevHi, n)
			}
		}
	}
}

// rowSegments must tile each SSet's game row exactly: segments in ascending
// column (and worker) order, contiguous, each lying inside its owner's
// block. This is what lets Nature fold fitness in the sequential engine's
// order at any worker count.
func TestRowSegmentsTileRowsExactly(t *testing.T) {
	for _, s := range []int{2, 3, 5, 8} {
		n := s * (s - 1)
		for nWorkers := 1; nWorkers <= n; nWorkers++ {
			for i := 0; i < s; i++ {
				segs := rowSegments(s, nWorkers, i)
				pos := i * (s - 1)
				prevWorker := -1
				for _, seg := range segs {
					if seg.lo != pos {
						t.Fatalf("s=%d workers=%d row %d: segment starts at %d, want %d",
							s, nWorkers, i, seg.lo, pos)
					}
					if seg.hi <= seg.lo {
						t.Fatalf("s=%d workers=%d row %d: empty segment [%d,%d)",
							s, nWorkers, i, seg.lo, seg.hi)
					}
					wLo, wHi := blockRange(n, nWorkers, seg.worker)
					if seg.lo < wLo || seg.hi > wHi {
						t.Fatalf("s=%d workers=%d row %d: segment [%d,%d) escapes worker %d's block [%d,%d)",
							s, nWorkers, i, seg.lo, seg.hi, seg.worker, wLo, wHi)
					}
					if seg.worker <= prevWorker {
						t.Fatalf("s=%d workers=%d row %d: worker order %d after %d",
							s, nWorkers, i, seg.worker, prevWorker)
					}
					prevWorker = seg.worker
					pos = seg.hi
				}
				if pos != (i+1)*(s-1) {
					t.Fatalf("s=%d workers=%d row %d: segments end at %d, want %d",
						s, nWorkers, i, pos, (i+1)*(s-1))
				}
			}
		}
	}
}
