package sim

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/strategy"
)

// This file is the multi-process entry point of the parallel engine: where
// RunParallel hosts every rank as a goroutine of one process, RunWorker
// hosts exactly one rank of a networked world wired by an mpi.NetTransport
// (the egdrun launcher spawns one such process per rank). The rank bodies
// are identical — natureRank and workerRank run unchanged over the wire —
// so a networked run follows the same trajectory, bit for bit, as an
// in-process run of the same Config.

func init() {
	// Register the engine's wire-payload vocabulary with the transport
	// codec. Every type a rank body sends must be registered identically
	// in every worker process (init-time registration guarantees that).
	for _, v := range []any{
		selection{}, update{}, resume{}, RankPhaseSnapshot{},
		&strategy.Pure{}, &strategy.Mixed{},
	} {
		mpi.RegisterWirePayload(v)
	}
}

// RunWorker executes this process's rank of a networked simulation: rank 0
// is the Nature Agent, the rest own block-distributed game pairs, exactly
// as RunParallel. The transport must be freshly created and not yet
// started; RunWorker installs the Config's world options (metrics, fault
// plan, receive deadline, eviction), wires the mesh, and runs the hosted
// rank to completion.
//
// On the Nature process the returned Result is the run's result, assembled
// as in RunParallel except that communication and transport metrics are
// this process's view of the wire (per-process accounting; see
// docs/TRANSPORT.md). Worker processes return (nil, nil) on success.
func RunWorker(cfg Config, t *mpi.NetTransport) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ranks := t.Size()
	if ranks < 2 {
		return nil, fmt.Errorf("sim: parallel engine needs >= 2 ranks (Nature + workers), got %d", ranks)
	}
	nWorkers := ranks - 1
	totalGames := cfg.NumSSets * (cfg.NumSSets - 1)
	if nWorkers > totalGames {
		return nil, fmt.Errorf("sim: %d workers exceed %d games per generation", nWorkers, totalGames)
	}

	world := mpi.NewNetWorld(t)
	if cfg.Metrics {
		world.EnableMetrics()
	}
	if cfg.FaultPlan != nil {
		world.InstallFaultPlan(cfg.FaultPlan)
	}
	if cfg.RecvTimeout > 0 {
		world.SetRecvTimeout(cfg.RecvTimeout)
	}
	if cfg.Evict {
		world.EnableEviction(cfg.HeartbeatEvery, cfg.HeartbeatMisses)
	}
	if err := t.Start(); err != nil {
		return nil, err
	}
	var result *Result
	start := time.Now() //egdlint:allow determinism elapsed-time metadata for Result.Elapsed, not part of the trajectory
	err := world.RunLocal(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			res, err := natureRank(cfg, c)
			if err != nil {
				return err
			}
			result = res
			return nil
		}
		return workerRank(cfg, c)
	})
	if err != nil {
		return nil, err
	}
	if result == nil {
		// A worker rank: the Result lives on the Nature process.
		return nil, nil
	}
	result.Elapsed = time.Since(start) //egdlint:allow determinism elapsed-time metadata, not part of the trajectory
	result.Evictions = len(world.Evictions())
	result.Ranks = ranks - result.Evictions
	if cfg.Metrics && result.Metrics != nil {
		result.Metrics.Comm = world.CommMetricsSnapshot()
		result.Metrics.Transport = world.TransportStats()
	}
	return result, nil
}
