package sim

import (
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// Generous heartbeat timings for tests: under -race a healthy goroutine can
// be descheduled for tens of milliseconds, and a false eviction would both
// fail the test and mask the scenario under study.
const (
	testHeartbeat = 20 * time.Millisecond
	testMisses    = 5
)

func evictConfig(cfg Config) Config {
	cfg.Evict = true
	cfg.HeartbeatEvery = testHeartbeat
	cfg.HeartbeatMisses = testMisses
	return cfg
}

// The tentpole acceptance scenario: a scripted kill on a worker mid-run
// completes WITHOUT a supervisor restart. The survivors agree on the new
// rank set, shrink, re-shard the dead worker's game pairs, and replay the
// interrupted generation — the trace shows one eviction and zero restarts,
// and the Result is bit-identical to a fault-free run at the same seed.
func TestEvictKilledWorkerBitExactNoRestart(t *testing.T) {
	cfg := testConfig(1, 8, 600)
	cfg.Seed = 401
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	faulty := evictConfig(cfg)
	faulty.CheckpointEvery = 100
	faulty.CheckpointSink = NewMemorySink()
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(2, 500)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallelResilient(faulty, 4, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (live eviction must preempt checkpoint restart)", res.Restarts)
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}
	if res.Ranks != 3 {
		t.Fatalf("ranks after eviction = %d, want 3", res.Ranks)
	}
	if !faulty.FaultPlan.Faults()[0].Fired() {
		t.Fatal("scripted kill never fired")
	}
	assertSameOutcome(t, clean, res)

	if n := faulty.EventLog.Count(trace.EventEviction); n != 1 {
		t.Errorf("eviction events = %d, want 1", n)
	}
	if n := faulty.EventLog.Count(trace.EventRecovery); n != 0 {
		t.Errorf("restart recovery events = %d, want 0", n)
	}
	if n := faulty.EventLog.Count(trace.EventFault); n != 0 {
		t.Errorf("supervisor fault events = %d, want 0 (the run never reached the supervisor)", n)
	}
}

// Eviction also works directly under RunParallel — no supervisor at all —
// and in incremental (dirty-tracking) mode, where the replay inflates
// GamesPlayed but leaves the trajectory untouched for deterministic games.
func TestEvictIncrementalModeDirectRun(t *testing.T) {
	cfg := testConfig(1, 8, 300)
	cfg.Seed = 402

	clean, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	faulty := evictConfig(cfg)
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(3, 200)
	res, err := RunParallel(faulty, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}
	for i := range clean.Final {
		if !clean.Final[i].Equal(res.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range clean.FinalFitness {
		if clean.FinalFitness[i] != res.FinalFitness[i] {
			t.Fatalf("final fitness %d differs", i)
		}
	}
	if clean.Counters.PCEvents != res.Counters.PCEvents ||
		clean.Counters.Adoptions != res.Counters.Adoptions ||
		clean.Counters.Mutations != res.Counters.Mutations {
		t.Fatalf("event counters differ: %+v vs %+v", clean.Counters, res.Counters)
	}
	if res.Counters.GamesPlayed < clean.Counters.GamesPlayed {
		t.Fatalf("evicted run played fewer games (%d) than clean (%d)",
			res.Counters.GamesPlayed, clean.Counters.GamesPlayed)
	}
}

// Two workers dying at different points in the run: two agreement epochs,
// two shrinks, still no restart, still bit-exact.
func TestEvictTwoStaggeredWorkerDeaths(t *testing.T) {
	cfg := testConfig(1, 8, 600)
	cfg.Seed = 403
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}

	faulty := evictConfig(cfg)
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(2, 200).Kill(4, 400)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallel(faulty, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", res.Evictions)
	}
	if res.Ranks != 3 {
		t.Fatalf("ranks = %d, want 3", res.Ranks)
	}
	if n := faulty.EventLog.Count(trace.EventEviction); n != 2 {
		t.Errorf("eviction events = %d, want 2", n)
	}
	assertSameOutcome(t, clean, res)
}

// Nature's death cannot be recovered live (no one else can re-drive the
// schedule): the run must fall back to the PR 1 checkpoint restart —
// evict-first, restart-second. The trace carries the eviction_failed
// hand-off marker and exactly one supervisor recovery.
func TestEvictNatureDeathFallsBackToRestart(t *testing.T) {
	cfg := testConfig(1, 8, 300)
	cfg.Seed = 404
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	faulty := evictConfig(cfg)
	faulty.CheckpointEvery = 50
	faulty.CheckpointSink = NewMemorySink()
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(0, 150)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallelResilient(faulty, 4, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (nature death must reach the supervisor)", res.Restarts)
	}
	if n := faulty.EventLog.Count(trace.EventEvictionFailed); n < 1 {
		t.Errorf("eviction_failed events = %d, want >= 1 (live eviction was tried first)", n)
	}
	if n := faulty.EventLog.Count(trace.EventRecovery); n != 1 {
		t.Errorf("recovery events = %d, want 1", n)
	}
	assertSameOutcome(t, clean, res)
}

// A failure that would shrink the world below MinRanks is refused: the
// survivors hand off to the checkpoint-restart supervisor instead.
func TestEvictBelowMinRanksFallsBackToRestart(t *testing.T) {
	cfg := testConfig(1, 8, 300)
	cfg.Seed = 405
	cfg.FullRecompute = true

	clean, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	faulty := evictConfig(cfg)
	faulty.MinRanks = 3 // nature + two workers: losing either worker is fatal
	faulty.CheckpointEvery = 50
	faulty.CheckpointSink = NewMemorySink()
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(2, 150)
	faulty.EventLog = trace.NewEventLog()
	res, err := RunParallelResilient(faulty, 3, RestartPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if n := faulty.EventLog.Count(trace.EventEvictionFailed); n < 1 {
		t.Errorf("eviction_failed events = %d, want >= 1", n)
	}
	assertSameOutcome(t, clean, res)
}
