package sim

import (
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/strategy"
)

// Population is the global view of the strategy space the paper's Nature
// Agent maintains: the strategy assigned to each SSet plus the pairwise
// payoff table from which SSet fitness derives.
type Population struct {
	space      strategy.Space
	strategies []strategy.Strategy
	// payoff[i*S+j] is the mean per-round payoff SSet i's strategy earns
	// against SSet j's strategy (i != j). The diagonal is unused.
	payoff []float64
	// dirty marks SSets whose strategy changed since their games were last
	// replayed (incremental mode).
	dirty []bool
}

// NewPopulation initialises a population of cfg.NumSSets strategies: deep
// copies of cfg.InitialStrategies when resuming, otherwise random draws
// from src (the paper's random initial assignment).
func NewPopulation(cfg Config, src *rng.Source) *Population {
	sp := strategy.NewSpace(cfg.Memory)
	p := &Population{
		space:      sp,
		strategies: make([]strategy.Strategy, cfg.NumSSets),
		payoff:     make([]float64, cfg.NumSSets*cfg.NumSSets),
		dirty:      make([]bool, cfg.NumSSets),
	}
	for i := range p.strategies {
		if cfg.InitialStrategies != nil {
			p.strategies[i] = cfg.InitialStrategies[i].Clone()
		} else {
			p.strategies[i] = randomStrategy(cfg.Kind, sp, src.Derive(uint64(i), 0xA11)) // per-SSet stream
		}
		p.dirty[i] = true
	}
	return p
}

func randomStrategy(kind StrategyKind, sp strategy.Space, src *rng.Source) strategy.Strategy {
	if kind == MixedStrategies {
		return strategy.RandomMixed(sp, src)
	}
	return strategy.RandomPure(sp, src)
}

// Size returns the number of SSets.
func (p *Population) Size() int { return len(p.strategies) }

// Space returns the strategy space.
func (p *Population) Space() strategy.Space { return p.space }

// Strategy returns SSet i's current strategy. The caller must not mutate it.
func (p *Population) Strategy(i int) strategy.Strategy { return p.strategies[i] }

// SetStrategy assigns a strategy to SSet i and marks its games dirty.
func (p *Population) SetStrategy(i int, s strategy.Strategy) {
	p.strategies[i] = s
	p.dirty[i] = true
}

// Adopt makes learner copy teacher's strategy (the PC learning step).
func (p *Population) Adopt(learner, teacher int) {
	p.strategies[learner] = p.strategies[teacher].Clone()
	p.dirty[learner] = true
}

// Payoff returns the cached mean per-round payoff of i against j.
func (p *Population) Payoff(i, j int) float64 { return p.payoff[i*len(p.strategies)+j] }

func (p *Population) setPayoff(i, j int, v float64) { p.payoff[i*len(p.strategies)+j] = v }

// Fitness returns SSet i's relative fitness: its mean per-round payoff
// averaged over all S-1 opponents. The payoff table already stores mean
// per-round payoffs (game.Result.Mean0 divides by rounds; exact mode is
// per-round by construction), so the only normalisation applied here is
// 1/(S-1) — together they realise the paper's 1/((S-1)*rounds) scaling of
// raw match totals. The Fermi exponent therefore always works on the
// per-round payoff scale ([S..T], 1 = all-defect to 3 = full cooperation
// under the standard payoff), independent of population size and match
// length.
func (p *Population) Fitness(i int) float64 {
	s := len(p.strategies)
	total := 0.0
	for j := 0; j < s; j++ {
		if j != i {
			total += p.Payoff(i, j)
		}
	}
	return total / float64(s-1)
}

// Fitnesses returns all SSet fitnesses.
func (p *Population) Fitnesses() []float64 {
	out := make([]float64, p.Size())
	for i := range out {
		out[i] = p.Fitness(i)
	}
	return out
}

// MeanFitness returns the population's mean relative fitness. Under the
// standard payoff it ranges from 1 (all-defect) to 3 (full cooperation).
func (p *Population) MeanFitness() float64 {
	total := 0.0
	for i := 0; i < p.Size(); i++ {
		total += p.Fitness(i)
	}
	return total / float64(p.Size())
}

// Abundance returns the strategy-abundance tally of the current population.
func (p *Population) Abundance() *stats.Abundance {
	a := stats.NewAbundance()
	for _, s := range p.strategies {
		a.Add(s.Fingerprint())
	}
	return a
}

// FractionMatching returns the share of SSets whose strategy equals ref
// (e.g. the WSLS fraction tracked in Fig. 2).
func (p *Population) FractionMatching(ref strategy.Strategy) float64 {
	n := 0
	for _, s := range p.strategies {
		if s.Equal(ref) {
			n++
		}
	}
	return float64(n) / float64(p.Size())
}

// FractionNear returns the share of SSets whose strategy rounds to the pure
// strategy ref — the clustering view used for mixed-strategy populations,
// where exact equality never occurs.
func (p *Population) FractionNear(ref *strategy.Pure) float64 {
	n := 0
	for _, s := range p.strategies {
		switch v := s.(type) {
		case *strategy.Pure:
			if v.Equal(ref) {
				n++
			}
		case *strategy.Mixed:
			if v.NearestPure().Equal(ref) {
				n++
			}
		}
	}
	return float64(n) / float64(p.Size())
}

// MeanCooperationProb returns the average cooperation probability across
// all SSets and states — a coarse population cooperativeness measure.
func (p *Population) MeanCooperationProb() float64 {
	total := 0.0
	states := p.space.NumStates()
	for _, s := range p.strategies {
		for st := 0; st < states; st++ {
			total += s.CooperateProb(uint32(st))
		}
	}
	return total / float64(p.Size()*states)
}

// Snapshot returns deep copies of all strategies (for observers that retain
// population state beyond the callback).
func (p *Population) Snapshot() []strategy.Strategy {
	out := make([]strategy.Strategy, len(p.strategies))
	for i, s := range p.strategies {
		out[i] = s.Clone()
	}
	return out
}

// Fermi evaluates Equation 1 of the paper: the probability that the learner
// adopts the teacher's strategy given payoffs piT, piL and selection
// intensity beta.
func Fermi(beta, piT, piL float64) float64 {
	return 1.0 / (1.0 + math.Exp(-beta*(piT-piL)))
}

// refreshPayoffs brings the payoff table up to date for generation gen over
// the SSet range [lo, hi) (the rows this caller owns). In full-recompute
// mode every owned row is replayed; in incremental mode only games
// involving a dirty SSet are. Column entries i<j and j<i are separate games,
// exactly as in the paper where each SSet's own agents model all its
// matches. Match evaluation goes through kern (payoffKernel.pairPayoff; a
// nil kernel selects the plain uncached path). Returns the number of games
// played — a cache hit still counts, since the game was scheduled and its
// payoff delivered; only the recomputation was skipped. A pairPayoff failure
// aborts the refresh and propagates so the run fails cleanly instead of
// panicking.
func refreshPayoffs(cfg *Config, pop *Population, master *rng.Source, kern *payoffKernel, gen, lo, hi int) (uint64, error) {
	games := uint64(0)
	s := pop.Size()
	kern.prepare(cfg, pop)
	for i := lo; i < hi; i++ {
		replayAll := cfg.FullRecompute || pop.dirty[i]
		for j := 0; j < s; j++ {
			if j == i {
				continue
			}
			if replayAll || pop.dirty[j] {
				v, err := kern.pairPayoff(cfg, master, gen, i, j, pop.strategies[i], pop.strategies[j])
				if err != nil {
					return games, err
				}
				pop.setPayoff(i, j, v)
				games++
			}
		}
	}
	return games, nil
}

// clearDirty resets the dirty marks after all owners refreshed their rows.
func (p *Population) clearDirty() {
	for i := range p.dirty {
		p.dirty[i] = false
	}
}
