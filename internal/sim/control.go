package sim

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrStopped marks a run halted by Config.Control: both engines return an
// error wrapping it (and the hook's own error) when the hook asks for a
// stop at a generation boundary. A stopped run is not a fault — the
// restart supervisor returns it unchanged instead of restarting — and when
// a CheckpointSink is configured the engine persists a resume snapshot
// first, so the caller can continue the trajectory bit-identically via
// InitialStrategies / StartGeneration / BaseCounters (the contract
// pause/resume in a job service builds on).
var ErrStopped = errors.New("sim: run stopped by control hook")

// stopRun finalises a control-initiated stop on the Nature side: it
// persists a resume snapshot of the population at the top of generation
// gen (when a sink is configured, carrying the series sampled so far
// under cfg.CheckpointSeries) and returns the run's stop error.
func stopRun(cfg *Config, pop *Population, gen int, ctr Counters, fit, coop *stats.Series, cause error) error {
	if cfg.CheckpointSink != nil {
		if err := saveSnapshot(cfg, pop, gen, ctr, fit, coop); err != nil {
			return fmt.Errorf("sim: stop snapshot at generation %d: %w (stop cause: %w)", gen, err, cause)
		}
	}
	return fmt.Errorf("sim: run stopped at generation %d: %w: %w", gen, ErrStopped, cause)
}
