package sim

import (
	"math"
	"testing"
)

// The paper's central software property: the parallel decomposition changes
// where work runs, not what is computed. These tests pin the parallel
// engine's trajectory to the sequential reference for a range of rank
// counts, strategy kinds, and evaluation modes.

func assertSameTrajectory(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Counters.PCEvents != b.Counters.PCEvents ||
		a.Counters.Adoptions != b.Counters.Adoptions ||
		a.Counters.Mutations != b.Counters.Mutations ||
		a.Counters.GamesPlayed != b.Counters.GamesPlayed {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
	if len(a.Final) != len(b.Final) {
		t.Fatalf("final population sizes differ")
	}
	for i := range a.Final {
		if !a.Final[i].Equal(b.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range a.FinalFitness {
		if a.FinalFitness[i] != b.FinalFitness[i] {
			t.Fatalf("final fitness %d differs: %v vs %v", i, a.FinalFitness[i], b.FinalFitness[i])
		}
	}
	if a.MeanFitness.Len() != b.MeanFitness.Len() {
		t.Fatalf("series lengths differ: %d vs %d", a.MeanFitness.Len(), b.MeanFitness.Len())
	}
	for i := 0; i < a.MeanFitness.Len(); i++ {
		ga, va := a.MeanFitness.At(i)
		gb, vb := b.MeanFitness.At(i)
		if ga != gb {
			t.Fatalf("series generation %d vs %d", ga, gb)
		}
		// Summation order differs between a tree reduction and a serial
		// loop; allow last-ulp drift only.
		if math.Abs(va-vb) > 1e-9 {
			t.Fatalf("mean fitness at gen %d: %v vs %v", ga, va, vb)
		}
	}
}

func TestParallelMatchesSequentialAcrossRankCounts(t *testing.T) {
	cfg := testConfig(1, 12, 60)
	cfg.Seed = 101
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 3, 4, 5, 8, 13} {
		par, err := RunParallel(cfg, ranks)
		if err != nil {
			t.Fatalf("ranks %d: %v", ranks, err)
		}
		if par.Ranks != ranks {
			t.Fatalf("result ranks %d", par.Ranks)
		}
		assertSameTrajectory(t, seq, par)
	}
}

func TestParallelParityMixedStrategiesWithErrors(t *testing.T) {
	cfg := testConfig(1, 9, 50)
	cfg.Seed = 102
	cfg.Kind = MixedStrategies
	cfg.Rules.ErrorRate = 0.02
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 4, 7} {
		par, err := RunParallel(cfg, ranks)
		if err != nil {
			t.Fatalf("ranks %d: %v", ranks, err)
		}
		assertSameTrajectory(t, seq, par)
	}
}

func TestParallelParityFullRecompute(t *testing.T) {
	cfg := testConfig(2, 8, 30)
	cfg.Seed = 103
	cfg.FullRecompute = true
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, seq, par)
}

func TestParallelParityHigherMemory(t *testing.T) {
	cfg := testConfig(3, 6, 20)
	cfg.Seed = 104
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, seq, par)
}

func TestParallelValidation(t *testing.T) {
	cfg := testConfig(1, 4, 10)
	if _, err := RunParallel(cfg, 1); err == nil {
		t.Fatal("1 rank accepted (needs Nature + worker)")
	}
	if _, err := RunParallel(cfg, 0); err == nil {
		t.Fatal("0 ranks accepted")
	}
	// Workers are capped by the games of one generation, S*(S-1) = 12.
	if _, err := RunParallel(cfg, 14); err == nil {
		t.Fatal("more workers than games accepted")
	}
	if _, err := RunParallel(cfg, 13); err != nil {
		t.Fatalf("max workers rejected: %v", err)
	}
}

func TestParallelParityMoreWorkersThanSSets(t *testing.T) {
	// The paper's second parallelism level: with more processors than
	// SSets, one SSet's games split across workers ("each processor
	// handles between 1/2 and 8 full SSets"). Parity must hold when rows
	// span several workers, including with PC fitness reassembly.
	cfg := testConfig(1, 5, 60)
	cfg.Seed = 107
	cfg.PCRate = 0.5 // exercise segment reassembly often
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{7, 11, 16, 21} { // 6..20 workers for 20 games
		par, err := RunParallel(cfg, ranks)
		if err != nil {
			t.Fatalf("ranks %d: %v", ranks, err)
		}
		assertSameTrajectory(t, seq, par)
	}
}

func TestParallelParityMaxWorkersOnePairEach(t *testing.T) {
	cfg := testConfig(1, 4, 30)
	cfg.Seed = 108
	cfg.Kind = MixedStrategies
	cfg.Rules.ErrorRate = 0.02
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, 13) // 12 workers: exactly one game pair each
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, seq, par)
}

func TestParallelObserverRuns(t *testing.T) {
	cfg := testConfig(1, 6, 15)
	cfg.Seed = 105
	count := 0
	adopted := 0
	cfg.Observer = ObserverFunc(func(gen int, pop *Population, ev Events) {
		count++
		if ev.Adopted {
			adopted++
		}
	})
	res, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("observer called %d times", count)
	}
	if uint64(adopted) != res.Counters.Adoptions {
		t.Fatalf("observer saw %d adoptions, counters say %d", adopted, res.Counters.Adoptions)
	}
}

func TestParallelOneSSetPerWorker(t *testing.T) {
	cfg := testConfig(1, 6, 25)
	cfg.Seed = 106
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, 7) // 6 workers, 1 SSet each
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, seq, par)
}
