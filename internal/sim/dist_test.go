package sim

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// runNetworked hosts a full networked run inside one test process: each of
// the ranks that egdrun would spawn as a worker process runs here as a
// goroutine with its own NetTransport, its own World, and its own view of
// the unix-socket mesh — every byte between ranks crosses a real socket.
// It returns the Nature rank's Result and the per-rank RunWorker errors.
func runNetworked(t *testing.T, cfg Config, ranks int) (*Result, []error) {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, ranks)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	results := make([]*Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpi.NewNetTransport(mpi.NetConfig{
				Self:    rank,
				Size:    ranks,
				Network: "unix",
				Addrs:   addrs,
				Job:     t.Name(),
				Linger:  time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			results[rank], errs[rank] = RunWorker(cfg, tr)
		}(i)
	}
	wg.Wait()
	return results[0], errs
}

// The backend-parity acceptance criterion: the same seeded Config produces
// a byte-identical Result whether the ranks are goroutines sharing a
// process (RunParallel) or processes sharing nothing but sockets
// (RunWorker). The transport changes where bytes travel, not what is
// computed.
func TestNetworkedBackendParityBitExact(t *testing.T) {
	cfg := testConfig(1, 12, 60)
	cfg.Seed = 101

	inproc, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, errs := runNetworked(t, cfg, 3)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if net == nil {
		t.Fatal("networked run produced no Result on the Nature rank")
	}
	assertSameTrajectory(t, inproc, net)
	// Two parallel runs with identical reduction trees must agree exactly,
	// not merely within tolerance.
	for i := 0; i < inproc.MeanFitness.Len(); i++ {
		_, va := inproc.MeanFitness.At(i)
		_, vb := net.MeanFitness.At(i)
		if va != vb {
			t.Fatalf("mean fitness sample %d: %v (in-process) vs %v (wire)", i, va, vb)
		}
	}
	if inproc.Cooperation.Len() != net.Cooperation.Len() {
		t.Fatalf("cooperation series lengths differ: %d vs %d", inproc.Cooperation.Len(), net.Cooperation.Len())
	}
	for i := 0; i < inproc.Cooperation.Len(); i++ {
		ga, va := inproc.Cooperation.At(i)
		gb, vb := net.Cooperation.At(i)
		if ga != gb || va != vb {
			t.Fatalf("cooperation at sample %d: (%d,%v) vs (%d,%v)", i, ga, va, gb, vb)
		}
	}
	if net.Ranks != 3 || net.Evictions != 0 || net.Restarts != 0 {
		t.Fatalf("networked result ranks=%d evictions=%d restarts=%d", net.Ranks, net.Evictions, net.Restarts)
	}
}

// With metrics on, the deterministic half of the instrumentation — phase
// and collective call counts — is identical across backends, and the
// networked Result additionally carries a transport snapshot whose frame
// counters prove the run really crossed the wire.
func TestNetworkedBackendParityMetrics(t *testing.T) {
	cfg := testConfig(1, 8, 40)
	cfg.Seed = 105
	cfg.Metrics = true

	inproc, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, errs := runNetworked(t, cfg, 3)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	assertSameTrajectory(t, inproc, net)
	if inproc.Metrics == nil || net.Metrics == nil {
		t.Fatal("metrics missing from a Result")
	}
	// Per-rank phase call counts: deterministic, so equal across backends.
	if len(inproc.Metrics.Phases) != len(net.Metrics.Phases) {
		t.Fatalf("phase snapshot counts differ: %d vs %d", len(inproc.Metrics.Phases), len(net.Metrics.Phases))
	}
	for i := range inproc.Metrics.Phases {
		a, b := inproc.Metrics.Phases[i], net.Metrics.Phases[i]
		if a.Rank != b.Rank || len(a.Phases) != len(b.Phases) {
			t.Fatalf("rank snapshot %d shape differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Phases {
			if a.Phases[j].Phase != b.Phases[j].Phase || a.Phases[j].Calls != b.Phases[j].Calls {
				t.Fatalf("rank %d phase %q calls: %d (in-process) vs %d (wire)",
					a.Rank, a.Phases[j].Phase, a.Phases[j].Calls, b.Phases[j].Calls)
			}
		}
	}
	// Transport accounting is per-process wallclock observability, not part
	// of the trajectory — but it must exist and show real wire traffic.
	if inproc.Metrics.Transport != nil {
		t.Fatal("in-process run grew a transport snapshot")
	}
	ts := net.Metrics.Transport
	if ts == nil {
		t.Fatal("networked run has no transport snapshot")
	}
	if ts.FramesSent == 0 || ts.FramesRecv == 0 || ts.BytesSent == 0 {
		t.Fatalf("transport snapshot shows no traffic: %+v", ts)
	}
	// The snapshot flows into the metrics registry under wallclock naming
	// (stripped from deterministic snapshots).
	snap := net.MetricsRegistry().Snapshot()
	found := false
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "egd_transport_frames_sent_wallclock_total") {
			found = true
		}
	}
	if !found {
		t.Fatal("transport counters missing from metrics registry")
	}
	for _, c := range snap.Deterministic().Counters {
		if strings.HasPrefix(c.Name, "egd_transport_") {
			t.Fatalf("wallclock transport counter %q survived Deterministic()", c.Name)
		}
	}
}

// The chaos acceptance criterion at the engine level: a worker whose rank
// dies mid-run over the wire — injected fault, goodbye frame, agreement,
// shrink — yields the same strategies, fitness, and event counters as a
// run that never saw the fault. Incremental mode replays the interrupted
// generation, so GamesPlayed may only grow.
func TestNetworkedEvictionRecoversBitExact(t *testing.T) {
	cfg := testConfig(1, 8, 300)
	cfg.Seed = 402

	clean, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	faulty := evictConfig(cfg)
	faulty.FaultPlan = mpi.NewFaultPlan().Kill(3, 200)
	res, errs := runNetworked(t, faulty, 4)
	if errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("survivors errored: %v / %v / %v", errs[0], errs[1], errs[2])
	}
	if !errors.Is(errs[3], mpi.ErrInjectedFault) {
		t.Fatalf("killed rank exit: %v", errs[3])
	}
	if !faulty.FaultPlan.Faults()[0].Fired() {
		t.Fatal("scripted kill never fired")
	}
	if res == nil {
		t.Fatal("no Result from the Nature rank")
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}
	if res.Ranks != 3 {
		t.Fatalf("ranks after eviction = %d, want 3", res.Ranks)
	}
	for i := range clean.Final {
		if !clean.Final[i].Equal(res.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range clean.FinalFitness {
		if clean.FinalFitness[i] != res.FinalFitness[i] {
			t.Fatalf("final fitness %d differs", i)
		}
	}
	if clean.Counters.PCEvents != res.Counters.PCEvents ||
		clean.Counters.Adoptions != res.Counters.Adoptions ||
		clean.Counters.Mutations != res.Counters.Mutations {
		t.Fatalf("event counters differ: %+v vs %+v", clean.Counters, res.Counters)
	}
	if res.Counters.GamesPlayed < clean.Counters.GamesPlayed {
		t.Fatalf("evicted run played fewer games (%d) than clean (%d)",
			res.Counters.GamesPlayed, clean.Counters.GamesPlayed)
	}
}

// RunWorker mirrors RunParallel's validation: it rejects bad configs and
// degenerate rank counts before any socket is touched.
func TestRunWorkerValidation(t *testing.T) {
	dir := t.TempDir()
	mk := func(self, size int) *mpi.NetTransport {
		addrs := make([]string, size)
		for i := range addrs {
			addrs[i] = filepath.Join(dir, fmt.Sprintf("v%d.sock", i))
		}
		tr, err := mpi.NewNetTransport(mpi.NetConfig{
			Self: self, Size: size, Network: "unix", Addrs: addrs, Job: t.Name(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cfg := testConfig(1, 4, 10)
	if _, err := RunWorker(cfg, mk(0, 1)); err == nil {
		t.Fatal("1 rank accepted (needs Nature + worker)")
	}
	if _, err := RunWorker(cfg, mk(0, 14)); err == nil {
		t.Fatal("13 workers accepted for 12 games")
	}
	bad := cfg
	bad.Generations = -1
	if _, err := RunWorker(bad, mk(0, 3)); err == nil {
		t.Fatal("invalid config accepted")
	}
}
