package sim

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// TestParallelMetricsParity: collection must not perturb the trajectory —
// a metrics-enabled parallel run matches the metrics-free sequential
// reference bit for bit, and the aggregate covers every rank and phase.
func TestParallelMetricsParity(t *testing.T) {
	cfg := testConfig(1, 10, 40)
	cfg.Seed = 301
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := cfg
	mcfg.Metrics = true
	const ranks = 4
	par, err := RunParallel(mcfg, ranks)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, seq, par)

	m := par.Metrics
	if m == nil {
		t.Fatal("Metrics nil with Config.Metrics set")
	}
	if len(m.Phases) != ranks {
		t.Fatalf("phase snapshots for %d ranks, want %d", len(m.Phases), ranks)
	}
	for i, rs := range m.Phases {
		if rs.Rank != i {
			t.Errorf("phase snapshot %d has rank %d", i, rs.Rank)
		}
	}
	// Every worker played games each generation and saw every broadcast.
	for _, rs := range m.Phases[1:] {
		byPhase := map[string]PhaseStat{}
		for _, p := range rs.Phases {
			byPhase[p.Phase] = p
		}
		if got := byPhase[PhaseGamePlay].Calls; got != uint64(cfg.Generations) {
			t.Errorf("rank %d: %d game_play calls, want %d", rs.Rank, got, cfg.Generations)
		}
		if got := byPhase[PhaseBroadcast].Calls; got != uint64(2*cfg.Generations) {
			t.Errorf("rank %d: %d broadcast calls, want %d", rs.Rank, got, 2*cfg.Generations)
		}
	}
	if len(m.Comm) != ranks {
		t.Fatalf("comm snapshots for %d ranks, want %d", len(m.Comm), ranks)
	}
	if m.Comm[0].SentMsgs == 0 || m.Comm[1].RecvMsgs == 0 {
		t.Error("comm accounting empty")
	}
	compute, comm, _ := m.ComputeCommSplit()
	if compute <= 0 || comm <= 0 {
		t.Errorf("compute/comm split = %v/%v, want both positive", compute, comm)
	}
}

// TestSequentialMetrics: the reference engine records its phases too.
func TestSequentialMetrics(t *testing.T) {
	cfg := testConfig(1, 8, 25)
	cfg.Seed = 302
	cfg.Metrics = true
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || len(res.Metrics.Phases) != 1 {
		t.Fatalf("sequential metrics = %+v, want one rank", res.Metrics)
	}
	byPhase := map[string]PhaseStat{}
	for _, p := range res.Metrics.Phases[0].Phases {
		byPhase[p.Phase] = p
	}
	if byPhase[PhaseGamePlay].Calls != uint64(cfg.Generations) {
		t.Errorf("game_play calls = %d, want %d", byPhase[PhaseGamePlay].Calls, cfg.Generations)
	}
	if byPhase[PhaseNatureStep].Calls != uint64(cfg.Generations) {
		t.Errorf("nature_step calls = %d, want %d", byPhase[PhaseNatureStep].Calls, cfg.Generations)
	}
}

// TestMetricsRegistryDeterminism: two same-seed runs export byte-identical
// deterministic snapshots — the acceptance contract for -metrics output.
func TestMetricsRegistryDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := testConfig(1, 9, 30)
		cfg.Seed = 303
		cfg.Metrics = true
		res, err := RunParallel(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WriteJSON(&buf, res.MetricsRegistry().Snapshot().Deterministic()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 || !bytes.Contains(a, []byte("egd_games_played_total")) {
		t.Fatalf("snapshot missing expected series: %s", a)
	}
}

// TestMetricsRegistryExportsCommSeries: the registry carries per-rank,
// per-tag comm counters under the documented names.
func TestMetricsRegistryExportsCommSeries(t *testing.T) {
	cfg := testConfig(1, 8, 20)
	cfg.Seed = 304
	cfg.Metrics = true
	res, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.MetricsRegistry().Snapshot()
	names := map[string]bool{}
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, want := range []string{
		`egd_comm_sent_messages_total{rank="0",tag="coll_bcast"}`,
		`egd_comm_recv_bytes_total{rank="1",tag="coll_bcast"}`,
		`egd_comm_collective_calls_total{op="bcast",rank="1"}`,
		`egd_phase_calls_total{phase="game_play",rank="1"}`,
		`egd_phase_nanos{phase="broadcast",rank="0"}`,
	} {
		if !names[want] {
			t.Errorf("snapshot missing %s", want)
		}
	}
}

// TestMetricsOffByDefault: no aggregate, no registry, nothing gathered.
func TestMetricsOffByDefault(t *testing.T) {
	cfg := testConfig(1, 6, 10)
	cfg.Seed = 305
	res, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatalf("Metrics = %+v without Config.Metrics", res.Metrics)
	}
	if res.MetricsRegistry() != nil {
		t.Fatal("MetricsRegistry non-nil without Config.Metrics")
	}
}

// TestMetricsEventLogged: the engine appends one EventMetrics trace event.
func TestMetricsEventLogged(t *testing.T) {
	cfg := testConfig(1, 6, 10)
	cfg.Seed = 306
	cfg.Metrics = true
	cfg.EventLog = trace.NewEventLog()
	if _, err := RunParallel(cfg, 3); err != nil {
		t.Fatal(err)
	}
	if n := cfg.EventLog.Count(trace.EventMetrics); n != 1 {
		t.Fatalf("logged %d metrics events, want 1", n)
	}
}

// TestMetricsWithEviction: collection composes with live eviction — the
// evicted rank keeps its comm accounting (original-rank identity), and the
// survivors' phase snapshots still arrive.
func TestMetricsWithEviction(t *testing.T) {
	cfg := evictConfig(testConfig(1, 8, 200))
	cfg.Seed = 307
	cfg.Metrics = true
	cfg.FullRecompute = true
	cfg.FaultPlan = mpi.NewFaultPlan().Kill(2, 60)
	res, err := RunParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}
	if len(res.Metrics.Comm) != 4 {
		t.Fatalf("comm snapshots = %d, want 4 (original ranks)", len(res.Metrics.Comm))
	}
	if !res.Metrics.Comm[2].Evicted {
		t.Error("evicted rank not flagged in comm snapshot")
	}
	if res.Metrics.Comm[2].SentMsgs == 0 {
		t.Error("evicted rank's pre-death traffic lost")
	}
	// Phase snapshots: survivors only (the dead goroutine's timer is gone).
	if len(res.Metrics.Phases) != 3 {
		t.Fatalf("phase snapshots = %d, want 3 survivors", len(res.Metrics.Phases))
	}
	for _, rs := range res.Metrics.Phases {
		if rs.Rank == 2 {
			t.Error("evicted rank reported a phase snapshot")
		}
	}
}
