package sim

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/game"
	"repro/internal/rng"
	"repro/internal/strategy"
)

// payoffKernel bundles the per-rank machinery of one run's payoff
// evaluation: the optional paper-faithful search engine, the optional
// strategy-pair payoff cache, and a pointer-keyed fingerprint memo. Each
// rank (and the sequential engine) owns exactly one kernel; none of its
// state is shared or sent. A nil kernel is valid and selects the plain
// uncached path — tests exercising refreshPayoffs directly rely on this.
//
// The cacheability contract (docs/KERNEL.md): a pair payoff may be served
// from the cache only when replaying the match is guaranteed to reproduce
// it bit for bit, i.e. when the payoff is a pure function of the two
// behaviour tables and the rules. That holds in exact mode (the Markov
// payoff is deterministic by construction, noise folded into the chain) and
// for sampled matches when ErrorRate == 0 and both strategies are
// deterministic (strategy.IsDeterministic). Everything else — noisy play,
// non-degenerate mixed strategies — depends on the (gen,i,j)-keyed random
// stream and bypasses the cache, keeping cache-on and cache-off
// trajectories identical.
type payoffKernel struct {
	eng   *game.SearchEngine
	cache *game.PairCache
	// fps memoizes canonical fingerprints per live Strategy value (pointer
	// identity). Population strategies are shared, not mutated in place —
	// every change installs a fresh Clone — so a pointer's fingerprint never
	// goes stale. Bounded by fpCap; lookups and inserts only (no iteration),
	// so the determinism lint holds.
	fps   map[strategy.Strategy]strategy.Fingerprint
	fpCap int
	// tab* is the per-pass fingerprint table built by prepare(): one entry
	// per SSet so the pair loop pays two slice loads instead of two
	// interface-map lookups per match. tabStrats records which strategy
	// value each entry was computed from; pairPayoff uses the table only
	// when the passed strategy is that exact value, so a stale table (or a
	// direct pairPayoff call that never prepared one) degrades to the slow
	// path instead of mis-keying.
	tabStrats []strategy.Strategy
	tabFP     []strategy.Fingerprint
	tabOK     []bool
}

// fpMemoSlack scales the fingerprint-memo bound: a population of S
// strategies plus churn keeps ~S live values, so 4·S entries absorb several
// generations of turnover before a reset.
const fpMemoSlack = 4

// newPayoffKernel builds the kernel for one rank of a validated config.
func newPayoffKernel(cfg *Config) *payoffKernel {
	k := &payoffKernel{}
	if cfg.UseSearchEngine {
		k.eng = game.NewSearchEngine(strategy.NewSpace(cfg.Memory))
	}
	if cfg.PayoffCache {
		k.cache = game.NewPairCache(cfg.PayoffCacheSize)
		bound := fpMemoSlack * cfg.NumSSets
		k.fps = make(map[strategy.Strategy]strategy.Fingerprint, bound)
		k.fpCap = bound
	}
	return k
}

// cacheStats snapshots the pair cache, nil when caching is disabled (so the
// metrics snapshot field stays omitted and wire sizes are unchanged).
func (k *payoffKernel) cacheStats() *game.CacheStats {
	if k == nil || k.cache == nil {
		return nil
	}
	st := k.cache.Stats()
	return &st
}

// fingerprint returns the canonical fingerprint of s through the
// pointer-keyed memo.
func (k *payoffKernel) fingerprint(s strategy.Strategy) (strategy.Fingerprint, bool) {
	if fp, ok := k.fps[s]; ok {
		return fp, true
	}
	fp, ok := strategy.CanonicalFingerprint(s)
	if !ok {
		return fp, false
	}
	if len(k.fps) >= k.fpCap {
		clear(k.fps)
	}
	k.fps[s] = fp
	return fp, true
}

// prepare (re)builds the per-pass fingerprint table from the population
// ahead of a refresh or replay sweep. It costs one memo lookup per SSet —
// amortised over up to S-1 matches each — and is a no-op without a cache.
func (k *payoffKernel) prepare(cfg *Config, pop *Population) {
	if k == nil || k.cache == nil {
		return
	}
	n := pop.Size()
	if cap(k.tabStrats) < n {
		k.tabStrats = make([]strategy.Strategy, n)
		k.tabFP = make([]strategy.Fingerprint, n)
		k.tabOK = make([]bool, n)
	}
	k.tabStrats = k.tabStrats[:n]
	k.tabFP = k.tabFP[:n]
	k.tabOK = k.tabOK[:n]
	noiseless := cfg.Rules.ErrorRate == 0
	for i := 0; i < n; i++ {
		s := pop.strategies[i]
		k.tabStrats[i] = s
		if !cfg.ExactPayoffs && (!noiseless || !strategy.IsDeterministic(s)) {
			k.tabOK[i] = false
			continue
		}
		k.tabFP[i], k.tabOK[i] = k.fingerprint(s)
	}
}

// pairKey builds the cache key for the ordered match (si, sj), reporting
// ok = false when the pair is not memoizable under the contract above.
func (k *payoffKernel) pairKey(cfg *Config, si, sj strategy.Strategy) (game.PairKey, bool) {
	if !cfg.ExactPayoffs {
		if cfg.Rules.ErrorRate != 0 {
			return game.PairKey{}, false
		}
		if !strategy.IsDeterministic(si) || !strategy.IsDeterministic(sj) {
			return game.PairKey{}, false
		}
	}
	fa, ok := k.fingerprint(si)
	if !ok {
		return game.PairKey{}, false
	}
	fb, ok := k.fingerprint(sj)
	if !ok {
		return game.PairKey{}, false
	}
	return game.NewPairKey(fa, fb, cfg.Rules, cfg.ExactPayoffs), true
}

// tableKey is the hot-path key builder: when the prepared table covers
// both indices with the exact strategy values passed, it answers from two
// slice loads; any mismatch falls back to pairKey's memo lookups.
func (k *payoffKernel) tableKey(cfg *Config, i, j int, si, sj strategy.Strategy) (game.PairKey, bool) {
	if i < len(k.tabStrats) && j < len(k.tabStrats) && k.tabStrats[i] == si && k.tabStrats[j] == sj {
		if !k.tabOK[i] || !k.tabOK[j] {
			return game.PairKey{}, false
		}
		return game.NewPairKey(k.tabFP[i], k.tabFP[j], cfg.Rules, cfg.ExactPayoffs), true
	}
	return k.pairKey(cfg, si, sj)
}

// pairPayoff evaluates the (i, j) match — through the cache when the pair
// is memoizable — returning SSet i's mean per-round payoff against j.
// Randomness still derives from (seed, gen, i, j) on the uncached path, and
// rng.Derive never advances the master stream, so serving a hit cannot
// shift any other draw: cache-on and cache-off runs stay bit-identical.
func (k *payoffKernel) pairPayoff(cfg *Config, master *rng.Source, gen, i, j int, si, sj strategy.Strategy) (float64, error) {
	if k != nil && k.cache != nil {
		if key, ok := k.tableKey(cfg, i, j, si, sj); ok {
			if v, hit := k.cache.Get(key); hit {
				return v, nil
			}
			v, err := k.play(cfg, master, gen, i, j, si, sj)
			if err != nil {
				return 0, err
			}
			k.cache.Put(key, v)
			return v, nil
		}
	}
	return k.play(cfg, master, gen, i, j, si, sj)
}

// play computes the match payoff without consulting the cache: the exact
// Markov payoff, the paper-faithful search engine, the bit-packed pure
// kernel, or the general sampled match, in that order of preference. The
// bit-packed path is unconditional when it applies (two pure strategies,
// no noise, direct indexing) because game.PlayPure is bit-identical to
// game.Play there — it is a strictly faster encoding of the same loop.
func (k *payoffKernel) play(cfg *Config, master *rng.Source, gen, i, j int, si, sj strategy.Strategy) (float64, error) {
	if cfg.ExactPayoffs {
		pi0, _, err := analysis.MarkovPayoffN(cfg.Rules.Payoff, si, sj, cfg.Rules.ErrorRate)
		if err != nil {
			// Config.Validate probes exact-mode computability up front, so
			// this is nearly unreachable — but a malformed job (say, an
			// observer injecting a wrong-space strategy) must surface as an
			// error the caller can fail one run with, never a panic that
			// takes down a long-running daemon hosting many runs.
			return 0, fmt.Errorf("sim: exact payoff for pair (%d,%d) at generation %d: %w", i, j, gen, err)
		}
		return pi0, nil
	}
	src := master.Derive(0x6A3E, uint64(gen), uint64(i), uint64(j))
	if k != nil && k.eng != nil {
		return k.eng.Play(cfg.Rules, si, sj, src).Mean0(), nil
	}
	if cfg.Rules.ErrorRate == 0 {
		if p0, ok := si.(*strategy.Pure); ok {
			if p1, ok := sj.(*strategy.Pure); ok {
				return game.PlayPure(cfg.Rules, p0, p1).Mean0(), nil
			}
		}
	}
	return game.Play(cfg.Rules, si, sj, src).Mean0(), nil
}
