package sim

import (
	"math"
	"testing"

	"repro/internal/strategy"
)

func TestRunSequentialBasics(t *testing.T) {
	cfg := testConfig(1, 8, 50)
	cfg.Seed = 1
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) != 8 || len(res.FinalFitness) != 8 {
		t.Fatalf("final sizes %d/%d", len(res.Final), len(res.FinalFitness))
	}
	if res.Counters.GamesPlayed < 8*7 {
		t.Fatalf("games played %d < initial %d", res.Counters.GamesPlayed, 8*7)
	}
	if res.Ranks != 1 {
		t.Fatalf("ranks = %d", res.Ranks)
	}
	if res.MeanFitness.Len() == 0 || res.Cooperation.Len() == 0 {
		t.Fatal("series empty")
	}
	// Per-round fitness scale: between P=1 and R=3 under the standard
	// payoff once averaged over opponents... extremes T=4/S=0 possible for
	// single opponents but the mean must stay within [0,4].
	for i, f := range res.FinalFitness {
		if f < 0 || f > 4 {
			t.Fatalf("fitness[%d] = %v out of [0,4]", i, f)
		}
	}
}

func TestRunSequentialDeterministic(t *testing.T) {
	cfg := testConfig(2, 6, 40)
	cfg.Seed = 42
	a, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
	for i := range a.Final {
		if !a.Final[i].Equal(b.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
	for i := range a.FinalFitness {
		if a.FinalFitness[i] != b.FinalFitness[i] {
			t.Fatalf("final fitness %d differs", i)
		}
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	cfg := testConfig(1, 8, 60)
	cfg.Seed = 1
	a, _ := RunSequential(cfg)
	cfg.Seed = 2
	b, _ := RunSequential(cfg)
	if a.Counters == b.Counters {
		// Event counts could coincide; check strategies too before failing.
		same := true
		for i := range a.Final {
			if !a.Final[i].Equal(b.Final[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestEventRatesApproximatePaperParameters(t *testing.T) {
	cfg := testConfig(1, 4, 4000)
	cfg.Seed = 3
	cfg.PCRate = 0.10
	cfg.Mu = 0.05
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcRate := float64(res.Counters.PCEvents) / 4000
	muRate := float64(res.Counters.Mutations) / 4000
	if math.Abs(pcRate-0.10) > 0.02 {
		t.Errorf("observed PC rate %v, configured 0.10", pcRate)
	}
	if math.Abs(muRate-0.05) > 0.015 {
		t.Errorf("observed mutation rate %v, configured 0.05", muRate)
	}
	if res.Counters.Adoptions > res.Counters.PCEvents {
		t.Error("more adoptions than PC events")
	}
}

func TestIncrementalMatchesFullRecomputeForPureStrategies(t *testing.T) {
	// Pure strategies with no execution errors make matches deterministic,
	// so replaying them every generation (paper mode) or only on change
	// must give identical trajectories.
	base := testConfig(1, 8, 80)
	base.Seed = 4

	inc := base
	inc.FullRecompute = false
	full := base
	full.FullRecompute = true

	a, err := RunSequential(inc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(full)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters.PCEvents != b.Counters.PCEvents ||
		a.Counters.Adoptions != b.Counters.Adoptions ||
		a.Counters.Mutations != b.Counters.Mutations {
		t.Fatalf("event counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
	for i := range a.Final {
		if !a.Final[i].Equal(b.Final[i]) {
			t.Fatalf("final strategy %d differs between modes", i)
		}
	}
	if b.Counters.GamesPlayed <= a.Counters.GamesPlayed {
		t.Fatalf("full recompute (%d games) should cost more than incremental (%d)",
			b.Counters.GamesPlayed, a.Counters.GamesPlayed)
	}
}

func TestSearchEngineModeMatchesDirect(t *testing.T) {
	base := testConfig(1, 6, 40)
	base.Seed = 5
	direct := base
	search := base
	search.UseSearchEngine = true
	a, err := RunSequential(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(search)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
	for i := range a.Final {
		if !a.Final[i].Equal(b.Final[i]) {
			t.Fatalf("final strategy %d differs", i)
		}
	}
}

func TestObserverSeesEveryGeneration(t *testing.T) {
	cfg := testConfig(1, 4, 25)
	gens := []int{}
	cfg.Observer = ObserverFunc(func(gen int, pop *Population, ev Events) {
		gens = append(gens, gen)
		if pop.Size() != 4 {
			t.Errorf("observer saw population of %d", pop.Size())
		}
	})
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 25 || gens[0] != 0 || gens[24] != 24 {
		t.Fatalf("observer called for %d generations", len(gens))
	}
}

func TestSelectionFavoursFitterStrategies(t *testing.T) {
	// With frequent PC, no mutation, and strong selection, the population
	// should lose diversity (abundance entropy falls) as fitter strategies
	// spread — the basic evolutionary mechanism.
	cfg := testConfig(1, 16, 800)
	cfg.Seed = 6
	cfg.PCRate = 1.0
	cfg.Mu = 0
	cfg.Beta = 10
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.FinalAbundance()
	if a.Distinct() >= 16 {
		t.Fatalf("no fixation: %d distinct strategies remain of 16", a.Distinct())
	}
	if res.Counters.Adoptions == 0 {
		t.Fatal("no adoptions occurred")
	}
}

func TestMutationMaintainsDiversity(t *testing.T) {
	// With mutation but no learning, diversity persists.
	cfg := testConfig(1, 8, 300)
	cfg.Seed = 7
	cfg.PCRate = 0
	cfg.Mu = 0.5
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Mutations == 0 {
		t.Fatal("no mutations at mu=0.5")
	}
	if res.Counters.PCEvents != 0 {
		t.Fatal("PC events at rate 0")
	}
}

func TestZeroGenerations(t *testing.T) {
	cfg := testConfig(1, 4, 0)
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) != 4 || res.Counters.GamesPlayed != 0 {
		t.Fatalf("zero-generation run: %+v", res.Counters)
	}
}

func TestMixedStrategiesRun(t *testing.T) {
	cfg := testConfig(1, 6, 60)
	cfg.Kind = MixedStrategies
	cfg.Seed = 8
	cfg.Rules.ErrorRate = 0.01
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Final {
		if _, ok := s.(*strategy.Mixed); !ok {
			t.Fatalf("final strategy %d is not mixed", i)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testConfig(0, 4, 10)
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("memory 0 accepted")
	}
	if _, err := RunParallel(testConfig(0, 4, 10), 3); err == nil {
		t.Fatal("parallel memory 0 accepted")
	}
}
