package sim

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/strategy"
)

// The parallel engine's broadcast payloads must implement mpi.Sizer: an
// unmodelled type silently counts as 8 bytes and corrupts the perf-model
// communication counters (and panics under -tags mpistrict).
var (
	_ mpi.Sizer = update{}
	_ mpi.Sizer = selection{}
)

func TestSelectionWireBytes(t *testing.T) {
	if got := (selection{}).WireBytes(); got != 24 {
		t.Fatalf("selection wire bytes = %d, want 24", got)
	}
}

func TestUpdateWireBytes(t *testing.T) {
	if got := (update{}).WireBytes(); got != 48 {
		t.Fatalf("bare update wire bytes = %d, want 48", got)
	}
	sp := strategy.NewSpace(2)
	states := uint64(sp.NumStates())
	withPure := update{Mutated: true, MutantStrategy: strategy.AllC(sp)}
	if got, want := withPure.WireBytes(), 48+states/8; got != want {
		t.Fatalf("pure-mutant update wire bytes = %d, want %d", got, want)
	}
	withMixed := update{Mutated: true, MutantStrategy: strategy.GTFT(sp, 0.3)}
	if got, want := withMixed.WireBytes(), 48+states*8; got != want {
		t.Fatalf("mixed-mutant update wire bytes = %d, want %d", got, want)
	}
}
