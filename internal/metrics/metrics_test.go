package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

// TestHistogramBucketing pins the le-semantics bucket assignment,
// including exact-boundary and overflow observations.
func TestHistogramBucketing(t *testing.T) {
	bounds := []float64{1, 10, 100}
	tests := []struct {
		name    string
		observe []float64
		counts  []uint64 // per-bucket, len(bounds)+1
		sum     float64
	}{
		{"empty", nil, []uint64{0, 0, 0, 0}, 0},
		{"below first bound", []float64{0.5}, []uint64{1, 0, 0, 0}, 0.5},
		{"exactly on bounds lands in that bucket", []float64{1, 10, 100}, []uint64{1, 1, 1, 0}, 111},
		{"between bounds rounds up", []float64{2, 99}, []uint64{0, 1, 1, 0}, 101},
		{"above every bound overflows", []float64{1000, 1e9}, []uint64{0, 0, 0, 2}, 1000 + 1e9},
		{"negative lands in first bucket", []float64{-5}, []uint64{1, 0, 0, 0}, -5},
		{"mixed", []float64{0, 1, 1.5, 10, 10.5, 100.5}, []uint64{2, 2, 1, 1}, 123.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			for _, v := range tt.observe {
				h.Observe(v)
			}
			got := make([]uint64, len(h.counts))
			for i := range h.counts {
				got[i] = h.counts[i].Load()
			}
			if !reflect.DeepEqual(got, tt.counts) {
				t.Errorf("bucket counts = %v, want %v", got, tt.counts)
			}
			if h.Count() != uint64(len(tt.observe)) {
				t.Errorf("count = %d, want %d", h.Count(), len(tt.observe))
			}
			if math.Abs(h.Sum()-tt.sum) > 1e-9 {
				t.Errorf("sum = %v, want %v", h.Sum(), tt.sum)
			}
		})
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000 {
		t.Fatalf("sum = %v, want 8000", h.Sum())
	}
	if got := h.counts[1].Load(); got != 8000 {
		t.Fatalf("bucket = %d, want 8000", got)
	}
}

func TestNameSortsLabels(t *testing.T) {
	got := Name("m_total", "tag", "fitness", "rank", "2")
	want := `m_total{rank="2",tag="fitness"}`
	if got != want {
		t.Fatalf("Name = %s, want %s", got, want)
	}
	if got := Name("bare"); got != "bare" {
		t.Fatalf("Name with no labels = %s", got)
	}
}

// TestRegistrySnapshotDeterminism runs the same metric program twice in
// different interleavings and asserts byte-identical JSON snapshots:
// the property egdsim's -metrics output inherits.
func TestRegistrySnapshotDeterminism(t *testing.T) {
	program := func(names []string) Snapshot {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(Name("sent_total", "rank", n)).Add(uint64(len(n)))
			r.Gauge("world_size").Set(4)
			r.Histogram(Name("latency_seconds", "rank", n), DurationBuckets()).Observe(0.01)
		}
		return r.Snapshot()
	}
	a := program([]string{"0", "1", "2", "3"})
	b := program([]string{"3", "1", "0", "2"}) // same work, different creation order
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("snapshots differ:\n%s\n%s", aj, bj)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	h := r.Histogram("h", []float64{1})
	if r.Histogram("h", []float64{1, 2, 3}) != h {
		t.Error("Histogram not idempotent")
	}
}

func TestDeterministicStripsWallClock(t *testing.T) {
	r := NewRegistry()
	r.Counter("games_total").Add(10)
	r.Counter("phase_game_play_nanos").Add(123456)
	r.Gauge("ranks").Set(4)
	r.Gauge("uptime_seconds").Set(9)
	r.Histogram("phase_bcast_seconds", []float64{1e-3, 1}).Observe(0.5)
	r.Histogram("payload_bytes", []float64{8, 64}).Observe(16)

	d := r.Snapshot().Deterministic()
	if len(d.Counters) != 1 || d.Counters[0].Name != "games_total" {
		t.Fatalf("counters = %+v, want only games_total", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Name != "ranks" {
		t.Fatalf("gauges = %+v, want only ranks", d.Gauges)
	}
	if len(d.Histograms) != 2 {
		t.Fatalf("histograms = %+v, want 2", d.Histograms)
	}
	for _, h := range d.Histograms {
		switch h.Name {
		case "phase_bcast_seconds":
			if h.Sum != 0 || h.Counts != nil {
				t.Errorf("wall-clock histogram kept distribution: %+v", h)
			}
			if h.Count != 1 {
				t.Errorf("wall-clock histogram lost its observation count: %+v", h)
			}
		case "payload_bytes":
			if h.Sum != 16 || len(h.Counts) != 3 {
				t.Errorf("deterministic histogram mangled: %+v", h)
			}
		default:
			t.Errorf("unexpected histogram %s", h.Name)
		}
	}
}

func TestDeterministicRespectsLabels(t *testing.T) {
	// The unit suffix is on the base name; labels must not hide it.
	r := NewRegistry()
	r.Counter(Name("coll_nanos", "op", "bcast")).Add(5)
	d := r.Snapshot().Deterministic()
	if len(d.Counters) != 0 {
		t.Fatalf("labelled wall-clock counter survived: %+v", d.Counters)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("sent_total", "rank", "0")).Add(3)
	r.Counter(Name("sent_total", "rank", "1")).Add(4)
	r.Gauge("ranks").Set(2)
	h := r.Histogram(Name("lat_seconds", "rank", "0"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# TYPE sent_total counter",
		`sent_total{rank="0"} 3`,
		`sent_total{rank="1"} 4`,
		"# TYPE ranks gauge",
		"ranks 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{rank="0",le="0.1"} 1`,
		`lat_seconds_bucket{rank="0",le="1"} 2`,
		`lat_seconds_bucket{rank="0",le="+Inf"} 3`,
		`lat_seconds_sum{rank="0"} 5.55`,
		`lat_seconds_count{rank="0"} 3`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
	if n := strings.Count(out, "# TYPE sent_total"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Histogram("h", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 1 {
		t.Fatalf("round trip lost counters: %+v", back)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Sum != 2 {
		t.Fatalf("round trip lost histograms: %+v", back)
	}
}
