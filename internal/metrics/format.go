package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON. Output is
// deterministic for a deterministic snapshot: entries are sorted by
// name and the encoding carries no timestamps.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers per metric family, counters
// and gauges as single samples, histograms expanded into cumulative
// `_bucket{le="..."}` samples plus `_sum` and `_count`.
func WritePrometheus(w io.Writer, s Snapshot) error {
	seen := make(map[string]bool)
	typeHeader := func(name, kind string) string {
		fam := familyOf(name)
		if seen[fam] {
			return ""
		}
		seen[fam] = true
		return fmt.Sprintf("# TYPE %s %s\n", fam, kind)
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", typeHeader(c.Name, "counter"), c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", typeHeader(g.Name, "gauge"), g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if hdr := typeHeader(h.Name, "histogram"); hdr != "" {
			if _, err := io.WriteString(w, hdr); err != nil {
				return err
			}
		}
		cum := uint64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", spliceLabel(h.Name, "_bucket", "le", formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", spliceLabel(h.Name, "_bucket", "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixName(h.Name, "_sum"), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixName(h.Name, "_count"), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// familyOf strips the label set from a metric identifier.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixName appends a suffix to the base name, preserving any labels:
// `h{rank="0"}` + `_sum` -> `h_sum{rank="0"}`.
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// spliceLabel appends a suffix to the base name and adds one more label
// to the (possibly empty) label set.
func spliceLabel(name, suffix, key, value string) string {
	label := fmt.Sprintf("%s=%q", key, value)
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:len(name)-1] + "," + label + "}"
	}
	return name + suffix + "{" + label + "}"
}

// formatFloat renders a float for the text format; infinities use the
// Prometheus spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
