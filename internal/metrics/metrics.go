// Package metrics is the engine's observability substrate: low-overhead
// atomic counters, gauges, and fixed-bucket histograms collected in a
// named registry whose snapshots are deterministic (sorted by metric
// name) and free of global state — a snapshot is a plain struct the
// caller owns.
//
// The package exists because the paper's entire evaluation (Tables V-VI,
// Figs. 4-7) is built on separating game-play compute time from
// population-dynamics communication time; internal/mpi uses these
// primitives for per-rank communication accounting and internal/sim for
// per-generation phase timers. Metric values that derive from wall
// clocks follow a naming convention — a `_seconds` or `_nanos` suffix on
// the base name — so Snapshot.Deterministic can strip them, leaving a
// byte-comparable core that two identical seeded runs reproduce exactly.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DurationBuckets is the default latency histogram layout: exponential
// upper bounds in seconds from one microsecond to ten seconds, spanning
// a point-to-point hop up to a full-recompute generation.
func DurationBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. An
// observation lands in the first bucket whose upper bound is >= the
// value (Prometheus `le` semantics); values above every bound land in
// the implicit +Inf overflow bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram over the given strictly increasing
// upper bounds (copied). It panics on an empty or unsorted layout: a
// histogram whose buckets cannot be trusted corrupts every downstream
// summary.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if !(b[i] > b[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %d: %v", i, b))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Name formats a metric identifier from a base name and label pairs
// (key1, value1, key2, value2, ...), with labels sorted by key so the
// identifier — and hence every registry snapshot — is deterministic:
//
//	Name("egd_comm_sent_messages_total", "rank", "2", "tag", "fitness")
//	  == `egd_comm_sent_messages_total{rank="2",tag="fitness"}`
//
// It panics on an odd number of label arguments (a programming error).
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: Name(%q) with odd label list %q", base, labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and safe for concurrent use; the hot path (mutating a metric already
// in hand) is lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. An existing histogram keeps its original
// layout; bounds are only consulted at creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value, sorted by name. The
// result is a plain value the caller owns; the registry keeps counting.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	s.sort()
	return s
}

// Snapshot is a point-in-time copy of a registry's metrics, sorted by
// name within each kind.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the +Inf overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// wallClockSuffixes mark metrics whose values derive from wall clocks
// and therefore vary between otherwise identical runs. The suffix
// applies to the base name (labels excluded). `_wallclock_total` marks
// counters whose count (not unit) is clock-driven — heartbeat tallies,
// for instance, grow with elapsed time rather than with the trajectory.
var wallClockSuffixes = []string{"_seconds", "_nanos", "_wallclock_total"}

// isWallClock reports whether a metric identifier names a wall-clock
// quantity by the unit-suffix convention.
func isWallClock(name string) bool {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	for _, suf := range wallClockSuffixes {
		if strings.HasSuffix(base, suf) {
			return true
		}
	}
	return false
}

// Deterministic returns a copy of the snapshot with every wall-clock
// quantity removed: counters and gauges whose base name carries a
// `_seconds`/`_nanos`/`_wallclock_total` suffix are dropped, and wall-clock
// histograms keep their observation Count (how many times the phase
// ran — deterministic) but lose Sum and the bucket distribution (where
// each observation landed depends on timing). Two runs with the same
// seed and configuration produce byte-identical Deterministic
// snapshots; the full snapshot differs only in these stripped fields.
func (s Snapshot) Deterministic() Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if !isWallClock(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !isWallClock(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if isWallClock(h.Name) {
			h = HistogramValue{Name: h.Name, Count: h.Count, Bounds: h.Bounds}
			h.Counts = nil
		} else {
			h.Bounds = append([]float64(nil), h.Bounds...)
			h.Counts = append([]uint64(nil), h.Counts...)
		}
		out.Histograms = append(out.Histograms, h)
	}
	return out
}
